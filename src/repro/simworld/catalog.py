"""Synthetic product catalog (Sections 3.1 and 5).

Each product carries a latent *quality* score that drives its ownership
popularity, price tier, multiplayer probability, Metacritic score, and
(in :mod:`repro.simworld.achievements`) its achievement count — the
couplings behind Figures 5/9/10 and the Section 9 correlations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.simworld.config import CatalogConfig
from repro.store.tables import CatalogTable

__all__ = ["CatalogTruth", "build_catalog"]


@dataclass
class CatalogTruth:
    """The dataset-visible catalog plus hidden generation state."""

    table: CatalogTable
    #: Latent quality (standard normal scale) per product.
    quality: np.ndarray
    #: Ownership-popularity weight per product (zero for non-games).
    popularity: np.ndarray

    @property
    def n_products(self) -> int:
        return self.table.n_products


def _sample_genres(
    rng: np.random.Generator, n: int, config: CatalogConfig
) -> tuple[np.ndarray, np.ndarray]:
    """Primary genre index and full genre bitmask per product."""
    shares = np.asarray(config.genre_primary_shares, dtype=np.float64)
    shares = shares / shares.sum()
    n_genres = len(shares)
    primary = rng.choice(n_genres, size=n, p=shares).astype(np.int8)
    mask = (np.uint64(1) << primary.astype(np.uint64)).astype(np.uint64)
    # Secondary labels are drawn uniformly (not by primary share), so that
    # the any-label Action share stays near the paper's 38.1%.
    for rate in (config.secondary_genre_rate, config.tertiary_genre_rate):
        extra = rng.integers(0, n_genres, size=n)
        take = rng.random(n) < rate
        add = (np.uint64(1) << extra.astype(np.uint64)).astype(np.uint64)
        mask = np.where(take, mask | add, mask)
    # The big Free to Play / MMO titles are Action hybrids (DOTA-likes).
    action_bit = np.uint64(1) << np.uint64(config.genre_names.index("Action"))
    f2p_like = np.isin(
        primary,
        [
            config.genre_names.index("Free to Play"),
            config.genre_names.index("Massively Multiplayer"),
        ],
    )
    hybrid = f2p_like & (rng.random(n) < 0.75)
    mask = np.where(hybrid, mask | action_bit, mask)
    return primary, mask


def _sample_prices(
    rng: np.random.Generator,
    quality: np.ndarray,
    is_action: np.ndarray,
    config: CatalogConfig,
) -> np.ndarray:
    """Price (cents) per product; quality and Action tilt to higher tiers."""
    points = np.asarray(config.price_points)
    weights = np.asarray(config.price_weights, dtype=np.float64)
    if len(points) != len(weights):
        raise ValueError("price_points and price_weights must align")
    log_w = np.log(weights / weights.sum())
    # Tier index grows with quality: add slope * quality * normalized tier
    # position to the log-weights, then Gumbel-max sample per product.
    tier_pos = np.linspace(-0.5, 0.5, len(points))
    tilt = config.price_quality_slope * quality + config.price_action_slope * is_action
    logits = log_w[None, :] + tilt[:, None] * tier_pos[None, :]
    gumbel = rng.gumbel(size=logits.shape)
    choice = np.argmax(logits + gumbel, axis=1)
    return np.round(points[choice] * 100).astype(np.int32)


def _release_days(
    rng: np.random.Generator, n: int
) -> np.ndarray:
    """Release day per product; catalog additions accelerate over time."""
    end = constants.days_since_launch(constants.CATALOG_CRAWL_DATE)
    u = rng.random(n)
    return (end * u ** 0.45).astype(np.int32)


def build_catalog(
    rng: np.random.Generator, config: CatalogConfig
) -> CatalogTruth:
    """Generate the full product catalog."""
    n = config.n_products
    is_game = rng.random(n) < config.game_share
    quality = rng.standard_normal(n)
    primary, genre_mask = _sample_genres(rng, n, config)
    is_action = (genre_mask & (np.uint64(1) << np.uint64(config.genre_names.index('Action')))) != 0
    price_cents = _sample_prices(rng, quality, is_action.astype(np.float64), config)

    # Free-to-play titles have zero price regardless of sampled tier.
    f2p_idx = config.genre_names.index("Free to Play")
    f2p = primary == f2p_idx
    price_cents[f2p] = 0

    # Multiplayer probability rises with quality around the catalog share.
    base_logit = np.log(
        config.multiplayer_share / (1.0 - config.multiplayer_share)
    )
    logits = base_logit + config.multiplayer_quality_slope * quality
    multiplayer = rng.random(n) < 1.0 / (1.0 + np.exp(-logits))
    multiplayer |= f2p  # the big F2P titles are all multiplayer

    metacritic = np.clip(
        config.metacritic_mean
        + 3.5 * quality
        + config.metacritic_sd * rng.standard_normal(n) * 0.8,
        20,
        97,
    ).astype(np.int8)

    # Ownership popularity: Zipf over quality rank (quality and popularity
    # are deliberately monotone-coupled), scaled per genre.
    popularity = np.zeros(n)
    games = np.flatnonzero(is_game)
    rank = np.empty(len(games), dtype=np.int64)
    rank[np.argsort(-quality[games])] = np.arange(len(games))
    popularity[games] = (rank + 1.0 + config.popularity_offset) ** (
        -config.popularity_zipf
    )
    boost = dict(config.genre_popularity_boost)
    boost_arr = np.array(
        [boost.get(name, 1.0) for name in config.genre_names]
    )
    popularity *= boost_arr[primary]
    total = popularity.sum()
    if total > 0:
        popularity /= total

    appid = np.sort(
        rng.choice(np.arange(10, 600_000, 10), size=n, replace=False)
    ).astype(np.int32)

    table = CatalogTable(
        appid=appid,
        is_game=is_game,
        primary_genre=primary,
        genre_mask=genre_mask,
        price_cents=price_cents,
        multiplayer=multiplayer,
        release_day=_release_days(rng, n),
        metacritic=metacritic,
        genre_names=tuple(config.genre_names),
    )
    return CatalogTruth(table=table, quality=quality, popularity=popularity)

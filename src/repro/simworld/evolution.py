"""World evolution: the second snapshot and the step generator.

Two granularities of "the world moved on":

- :func:`build_snapshot2` — the paper's §8 repeat crawl, modelled as
  comonotonic growth: each user's rank is approximately preserved
  (small jitter) while the marginal curve is re-anchored at the
  snapshot-2 values with a heavier tail.
- :func:`evolve` — a seeded step generator for the incremental
  pipeline (DESIGN.md §12): per step, accounts are created per the
  ID-space density model, games bought, playtime accrued, and
  friendships formed/dropped; each step yields the new dataset plus a
  :class:`~repro.delta.model.WorldDelta` naming exactly the users and
  columns it touched, which is what makes a delta-crawl sound and a
  column-scoped cache re-analysis cheap.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterator

import numpy as np
from scipy.special import ndtri

from repro import constants
from repro.delta.model import WorldDelta
from repro.simworld.config import EvolutionConfig, PlaytimeConfig
from repro.simworld.copula import LatentFactors
from repro.simworld.marginals import AnchoredCurve, TailSpec
from repro.simworld.ownership import Ownership
from repro.simworld.playtime import Playtimes, rank_uniform, twoweek_curve
from repro.simworld.rng import substream
from repro.steamid import IdSpace
from repro.store.dataset import SteamDataset
from repro.store.tables import (
    AccountTable,
    CSRMatrix,
    FriendTable,
    GroupTable,
    LibraryTable,
    Snapshot2Table,
)

__all__ = [
    "build_snapshot2",
    "owned_curve_snapshot2",
    "EvolveConfig",
    "EvolveStep",
    "evolve",
]


def owned_curve_snapshot2(
    anchors: tuple[tuple[float, float], ...], config: EvolutionConfig
) -> AnchoredCurve:
    """Snapshot-2 library-size marginal: anchors scaled, tail heavier."""
    grown = tuple(
        (q, float(np.ceil(x * config.owned_growth_p80))) for q, x in anchors
    )
    return AnchoredCurve(
        anchors=grown,
        x_min=1.0,
        tail=TailSpec("lognormal", config.owned_tail_sigma2),
        discrete=True,
    )


def _jittered_rank_uniform(
    rng: np.random.Generator, values: np.ndarray, jitter: float
) -> np.ndarray:
    """Rank-uniforms of ``values`` after a small Gaussian rank shake."""
    u = rank_uniform(values.astype(np.float64) + rng.random(len(values)) * 1e-6)
    z = ndtri(u) + jitter * rng.standard_normal(len(values))
    return rank_uniform(z)


def build_snapshot2(
    rng: np.random.Generator,
    latents: LatentFactors,
    ownership: Ownership,
    playtimes: Playtimes,
    value_cents: np.ndarray,
    total_min: np.ndarray,
    owned_anchors: tuple[tuple[float, float], ...],
    config: EvolutionConfig,
    playtime_config: PlaytimeConfig,
) -> Snapshot2Table:
    """Derive the per-user snapshot-2 aggregates from snapshot 1.

    ``value_cents`` and ``total_min`` are snapshot-1 per-user aggregates.
    """
    n_users = ownership.n_users
    owned1 = ownership.owned_counts.astype(np.int64)
    owners = np.flatnonzero(owned1 > 0)

    owned2 = owned1.copy()
    if len(owners):
        curve2 = owned_curve_snapshot2(owned_anchors, config)
        u2 = _jittered_rank_uniform(rng, owned1[owners], config.rank_jitter)
        grown = curve2.ppf(u2).astype(np.int64)
        owned2[owners] = np.maximum(owned1[owners], grown)
        collectors = np.flatnonzero(ownership.is_collector)
        if len(collectors):
            factor = rng.uniform(1.25, 1.95, len(collectors))
            owned2[collectors] = np.maximum(
                owned2[collectors],
                np.round(owned1[collectors] * factor).astype(np.int64),
            )

    # Account value scales with library growth plus price drift.
    value2 = value_cents.astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        growth = np.where(owned1 > 0, owned2 / np.maximum(owned1, 1), 1.0)
    drift = np.exp(0.08 * rng.standard_normal(n_users))
    value2 = np.round(value2 * growth * drift).astype(np.int64)
    np.maximum(value2, value_cents, out=value2)

    # Total playtime accrues another year of play for the players.
    players = (total_min > 0).astype(np.float64)
    extra = rng.gamma(
        shape=1.2, scale=(config.playtime_growth_mean - 1.0) / 1.2, size=n_users
    )
    total2 = np.round(total_min * (1.0 + players * extra)).astype(np.int64)

    # Played counts: some of the newly acquired games get launched.
    played1 = np.zeros(n_users, dtype=np.int64)
    entry_user = np.repeat(
        np.arange(n_users), np.diff(ownership.owned.indptr)
    )
    np.add.at(played1, entry_user, (playtimes.total_min > 0).astype(np.int64))
    new_games = owned2 - owned1
    played2 = played1 + rng.binomial(new_games.astype(np.int64), 0.55)
    np.minimum(played2, owned2, out=played2)

    # Fresh two-week window: same marginal, rec-correlated re-draw.
    twoweek2 = np.zeros(n_users, dtype=np.int64)
    if len(owners):
        z = 0.7 * latents.factor("rec")[owners] + 0.714 * rng.standard_normal(
            len(owners)
        )
        n_active = int(
            round((1.0 - playtime_config.twoweek_zero_share) * len(owners))
        )
        order = np.argsort(-z, kind="stable")
        active = owners[order[:n_active]]
        if len(active):
            u = rank_uniform(z[order[:n_active]])
            hours = twoweek_curve(playtime_config).ppf(u)
            twoweek2[active] = np.maximum(
                np.round(hours * 60.0).astype(np.int64), 1
            )

    return Snapshot2Table(
        owned=owned2,
        played=played2,
        value_cents=value2,
        total_min=np.maximum(total2, twoweek2),
        twoweek_min=twoweek2.astype(np.int32),
    )


# ---------------------------------------------------------------------------
# Incremental evolution (DESIGN.md §12)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EvolveConfig:
    """Per-step rates for :func:`evolve`.

    Every rate can be zeroed independently, which is how the benchmark
    carves out pure-playtime deltas (the maximally cache-friendly case:
    only ``lib.total_min``/``lib.twoweek_min`` move).
    """

    #: New accounts per existing account per step.
    account_growth: float = 0.01
    #: Share of accounts that buy games this step.
    buy_rate: float = 0.02
    #: Most games bought by one account in one step.
    max_new_games: int = 3
    #: Share of accounts (among game owners) that play this step.
    play_rate: float = 0.05
    #: Share of existing accounts that form a new friendship.
    friend_form_rate: float = 0.01
    #: Share of existing friendships dropped per step.
    friend_drop_rate: float = 0.002


@dataclass(frozen=True)
class EvolveStep:
    """One yielded evolution step: the new snapshot plus its delta."""

    dataset: SteamDataset
    delta: WorldDelta
    step: int


def _append_accounts(
    dataset: SteamDataset, rng: np.random.Generator, n_new: int, day: int
) -> tuple[SteamDataset, np.ndarray]:
    """Append ``n_new`` accounts with offsets above the current maximum.

    New offsets land at the paper's late-range density (the tail of the
    ID space keeps filling at >90% occupancy), so appending preserves
    the ascending-offset dense ordering: every pre-existing account
    keeps its dense index, which is what keeps prior caches and a prior
    crawl's dense-keyed arrays aligned across steps.
    """
    acc = dataset.accounts
    n = dataset.n_users
    base = int(acc.id_offset.max()) + 1
    span = max(
        n_new, int(np.ceil(n_new / constants.ID_DENSITY_LATE))
    )
    new_offsets = base + np.sort(
        IdSpace._sample_distinct(rng, span, n_new)
    )
    template = rng.integers(0, n, size=n_new)
    accounts = AccountTable(
        id_offset=np.concatenate([acc.id_offset, new_offsets]),
        created_day=np.concatenate(
            [
                acc.created_day,
                np.full(n_new, day, dtype=acc.created_day.dtype),
            ]
        ),
        country=np.concatenate([acc.country, acc.country[template]]),
        city=np.concatenate([acc.city, acc.city[template]]),
        country_names=acc.country_names,
    )
    n_users = n + n_new
    lib = dataset.library
    indptr = np.concatenate(
        [
            lib.owned.indptr,
            np.full(n_new, lib.owned.indptr[-1], dtype=np.int64),
        ]
    )
    library = LibraryTable(
        owned=CSRMatrix(indptr=indptr, indices=lib.owned.indices),
        total_min=lib.total_min,
        twoweek_min=lib.twoweek_min,
    )
    friends = FriendTable(
        u=dataset.friends.u,
        v=dataset.friends.v,
        day=dataset.friends.day,
        n_users=n_users,
    )
    groups = GroupTable(
        group_type=dataset.groups.group_type,
        focus_game=dataset.groups.focus_game,
        members=dataset.groups.members,
        n_users=n_users,
    )
    snapshot2 = dataset.snapshot2
    if snapshot2 is not None:
        snapshot2 = Snapshot2Table(
            **{
                f.name: np.concatenate(
                    [
                        getattr(snapshot2, f.name),
                        np.zeros(
                            n_new, dtype=getattr(snapshot2, f.name).dtype
                        ),
                    ]
                )
                for f in dataclasses.fields(Snapshot2Table)
            }
        )
    out = dataclasses.replace(
        dataset,
        accounts=accounts,
        friends=friends,
        groups=groups,
        library=library,
        snapshot2=snapshot2,
    )
    return out, new_offsets


def _buy_games(
    dataset: SteamDataset, rng: np.random.Generator, config: EvolveConfig
) -> tuple[SteamDataset, np.ndarray]:
    """Sampled users add 1..max_new_games unowned products (playtime 0)."""
    n = dataset.n_users
    n_buy = int(round(config.buy_rate * n))
    if n_buy == 0:
        return dataset, np.empty(0, dtype=np.int64)
    buyers = np.sort(rng.choice(n, size=n_buy, replace=False))
    lib = dataset.library
    n_products = dataset.n_products
    new_users: list[int] = []
    new_products: list[int] = []
    for user in buyers:
        want = int(rng.integers(1, config.max_new_games + 1))
        owned_row = set(int(p) for p in lib.owned.row(int(user)))
        picks = rng.integers(0, n_products, size=3 * want + 8)
        added = 0
        for product in picks:
            product = int(product)
            if product in owned_row:
                continue
            owned_row.add(product)
            new_users.append(int(user))
            new_products.append(product)
            added += 1
            if added == want:
                break
    if not new_users:
        return dataset, np.empty(0, dtype=np.int64)
    rows = np.concatenate(
        [lib.owned.row_ids(), np.array(new_users, dtype=np.int64)]
    )
    cols = np.concatenate(
        [
            lib.owned.indices,
            np.array(new_products, dtype=lib.owned.indices.dtype),
        ]
    )
    total = np.concatenate(
        [lib.total_min, np.zeros(len(new_users), dtype=lib.total_min.dtype)]
    )
    twoweek = np.concatenate(
        [
            lib.twoweek_min,
            np.zeros(len(new_users), dtype=lib.twoweek_min.dtype),
        ]
    )
    owned, perm = CSRMatrix.from_pairs(rows, cols, n)
    library = LibraryTable(
        owned=owned, total_min=total[perm], twoweek_min=twoweek[perm]
    )
    out = dataclasses.replace(dataset, library=library)
    return out, np.unique(np.array(new_users, dtype=np.int64))


def _accrue_playtime(
    dataset: SteamDataset, rng: np.random.Generator, config: EvolveConfig
) -> tuple[SteamDataset, np.ndarray]:
    """Sampled owners log minutes on one owned entry.

    Touches only ``lib.total_min``/``lib.twoweek_min`` — ownership
    structure, friendships, and accounts keep their bytes, so this is
    the delta under which the most stages stay cache-valid.
    """
    n = dataset.n_users
    lib = dataset.library
    owners = np.flatnonzero(lib.owned.counts() > 0)
    n_play = min(len(owners), int(round(config.play_rate * n)))
    if n_play == 0:
        return dataset, np.empty(0, dtype=np.int64)
    players = np.sort(rng.choice(owners, size=n_play, replace=False))
    total = lib.total_min.copy()
    twoweek = lib.twoweek_min.copy()
    indptr = lib.owned.indptr
    for user in players:
        user = int(user)
        slot = int(rng.integers(indptr[user], indptr[user + 1]))
        minutes = int(rng.integers(5, 300))
        total[slot] += minutes
        twoweek[slot] += minutes
    library = LibraryTable(
        owned=lib.owned, total_min=total, twoweek_min=twoweek
    )
    out = dataclasses.replace(dataset, library=library)
    return out, players.astype(np.int64)


def _churn_friendships(
    dataset: SteamDataset,
    rng: np.random.Generator,
    config: EvolveConfig,
    day: int,
) -> tuple[SteamDataset, np.ndarray]:
    """Form new edges and drop old ones; both endpoints count as changed.

    Marking *both* endpoints is what keeps the delta-crawl sound: the
    crawler harvests an edge from its lower endpoint, so every changed
    edge is guaranteed to be (re)fetched.
    """
    fr = dataset.friends
    n = dataset.n_users
    n_form = int(round(config.friend_form_rate * n))
    n_drop = int(round(config.friend_drop_rate * fr.n_edges))
    if n_form == 0 and n_drop == 0:
        return dataset, np.empty(0, dtype=np.int64)
    existing = set(
        (fr.u.astype(np.int64) * n + fr.v.astype(np.int64)).tolist()
    )
    changed: list[int] = []

    keep = np.ones(fr.n_edges, dtype=bool)
    if n_drop:
        dropped = rng.choice(fr.n_edges, size=n_drop, replace=False)
        keep[dropped] = False
        for e in dropped:
            changed.append(int(fr.u[e]))
            changed.append(int(fr.v[e]))
            existing.discard(int(fr.u[e]) * n + int(fr.v[e]))

    new_lo: list[int] = []
    new_hi: list[int] = []
    attempts = 0
    while len(new_lo) < n_form and attempts < 20:
        attempts += 1
        a = rng.integers(0, n, size=2 * (n_form - len(new_lo)))
        b = rng.integers(0, n, size=len(a))
        for x, y in zip(a, b):
            x, y = int(x), int(y)
            if x == y:
                continue
            lo, hi = (x, y) if x < y else (y, x)
            key = lo * n + hi
            if key in existing:
                continue
            existing.add(key)
            new_lo.append(lo)
            new_hi.append(hi)
            changed.append(lo)
            changed.append(hi)
            if len(new_lo) == n_form:
                break

    u = np.concatenate(
        [fr.u[keep].astype(np.int64), np.array(new_lo, dtype=np.int64)]
    )
    v = np.concatenate(
        [fr.v[keep].astype(np.int64), np.array(new_hi, dtype=np.int64)]
    )
    edge_day = np.concatenate(
        [
            fr.day[keep],
            np.full(len(new_lo), day, dtype=fr.day.dtype),
        ]
    )
    order = np.argsort(u * np.int64(n) + v, kind="stable")
    friends = FriendTable(
        u=u[order].astype(fr.u.dtype),
        v=v[order].astype(fr.v.dtype),
        day=edge_day[order],
        n_users=n,
    )
    out = dataclasses.replace(dataset, friends=friends)
    return out, np.unique(np.array(changed, dtype=np.int64))


def evolve(
    source,
    steps: int,
    config: EvolveConfig | None = None,
    seed: int | None = None,
) -> Iterator[EvolveStep]:
    """Yield ``steps`` seeded evolution steps of a world or dataset.

    ``source`` is a :class:`~repro.simworld.world.SteamWorld` or a bare
    :class:`~repro.store.dataset.SteamDataset`.  Each step draws from
    its own named substream of ``seed`` (default: the dataset's meta
    seed), so step *k* is reproducible without replaying steps 1..k-1's
    variate consumption.  The yielded :class:`EvolveStep` carries the
    new snapshot and the :class:`~repro.delta.model.WorldDelta` a
    delta-crawl or a targeted cache eviction needs.
    """
    dataset: SteamDataset = getattr(source, "dataset", source)
    if config is None:
        config = EvolveConfig()
    if seed is None:
        # Crawled datasets carry no world seed; evolution still needs a
        # deterministic default.
        seed = dataset.meta.seed if dataset.meta.seed is not None else 0
    for step in range(1, steps + 1):
        rng = substream(seed, f"evolve:{step}")
        day = dataset.meta.snapshot1_day + step
        n_prior = dataset.n_users
        prior_offsets = dataset.accounts.id_offset
        touched: set[str] = set()
        changed = np.empty(0, dtype=np.int64)
        new_offsets = np.empty(0, dtype=np.int64)

        n_new = int(round(config.account_growth * n_prior))
        if n_new:
            dataset, new_offsets = _append_accounts(
                dataset, rng, n_new, day
            )
            touched.update(
                (
                    "acc.id_offset",
                    "acc.created_day",
                    "acc.country",
                    "acc.city",
                    "lib.indptr",
                    "shape",
                )
            )
            if dataset.snapshot2 is not None:
                touched.update(
                    (
                        "s2.owned",
                        "s2.played",
                        "s2.value_cents",
                        "s2.total_min",
                        "s2.twoweek_min",
                    )
                )

        dataset, buyers = _buy_games(dataset, rng, config)
        if len(buyers):
            touched.update(
                (
                    "lib.indptr",
                    "lib.indices",
                    "lib.total_min",
                    "lib.twoweek_min",
                )
            )
            changed = np.union1d(changed, buyers)

        dataset, players = _accrue_playtime(dataset, rng, config)
        if len(players):
            touched.update(("lib.total_min", "lib.twoweek_min"))
            changed = np.union1d(changed, players)

        dataset, befriended = _churn_friendships(dataset, rng, config, day)
        if len(befriended):
            touched.update(("fr.u", "fr.v", "fr.day"))
            changed = np.union1d(changed, befriended)

        # Changed users are reported by offset, pre-existing only: a
        # brand-new account that also bought/played this step is already
        # covered by new_offsets.
        changed = changed[changed < n_prior]
        dataset.invalidate_fingerprint()
        delta = WorldDelta(
            step=step,
            seed=seed,
            changed_offsets=prior_offsets[changed],
            new_offsets=new_offsets,
            touched_columns=tuple(sorted(touched)),
        )
        yield EvolveStep(dataset=dataset, delta=delta, step=step)

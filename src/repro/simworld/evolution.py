"""Second snapshot, one year later (Section 8).

The paper re-crawled the *same* users ~12 months after the first snapshot
and found: tail magnitudes grew drastically (max library 2148 -> 3919, max
account value $24.3k -> $46.6k) while the 80th percentiles moved far less
(10 -> 15 games, $150.88 -> $224.93), and every distribution kept its
Table 4 classification.  We model this as comonotonic growth: each user's
rank is approximately preserved (small jitter) while the marginal curve is
re-anchored at the snapshot-2 values with a heavier tail.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtri

from repro.simworld.config import EvolutionConfig, PlaytimeConfig
from repro.simworld.copula import LatentFactors
from repro.simworld.marginals import AnchoredCurve, TailSpec
from repro.simworld.ownership import Ownership
from repro.simworld.playtime import Playtimes, rank_uniform, twoweek_curve
from repro.store.tables import Snapshot2Table

__all__ = ["build_snapshot2", "owned_curve_snapshot2"]


def owned_curve_snapshot2(
    anchors: tuple[tuple[float, float], ...], config: EvolutionConfig
) -> AnchoredCurve:
    """Snapshot-2 library-size marginal: anchors scaled, tail heavier."""
    grown = tuple(
        (q, float(np.ceil(x * config.owned_growth_p80))) for q, x in anchors
    )
    return AnchoredCurve(
        anchors=grown,
        x_min=1.0,
        tail=TailSpec("lognormal", config.owned_tail_sigma2),
        discrete=True,
    )


def _jittered_rank_uniform(
    rng: np.random.Generator, values: np.ndarray, jitter: float
) -> np.ndarray:
    """Rank-uniforms of ``values`` after a small Gaussian rank shake."""
    u = rank_uniform(values.astype(np.float64) + rng.random(len(values)) * 1e-6)
    z = ndtri(u) + jitter * rng.standard_normal(len(values))
    return rank_uniform(z)


def build_snapshot2(
    rng: np.random.Generator,
    latents: LatentFactors,
    ownership: Ownership,
    playtimes: Playtimes,
    value_cents: np.ndarray,
    total_min: np.ndarray,
    owned_anchors: tuple[tuple[float, float], ...],
    config: EvolutionConfig,
    playtime_config: PlaytimeConfig,
) -> Snapshot2Table:
    """Derive the per-user snapshot-2 aggregates from snapshot 1.

    ``value_cents`` and ``total_min`` are snapshot-1 per-user aggregates.
    """
    n_users = ownership.n_users
    owned1 = ownership.owned_counts.astype(np.int64)
    owners = np.flatnonzero(owned1 > 0)

    owned2 = owned1.copy()
    if len(owners):
        curve2 = owned_curve_snapshot2(owned_anchors, config)
        u2 = _jittered_rank_uniform(rng, owned1[owners], config.rank_jitter)
        grown = curve2.ppf(u2).astype(np.int64)
        owned2[owners] = np.maximum(owned1[owners], grown)
        collectors = np.flatnonzero(ownership.is_collector)
        if len(collectors):
            factor = rng.uniform(1.25, 1.95, len(collectors))
            owned2[collectors] = np.maximum(
                owned2[collectors],
                np.round(owned1[collectors] * factor).astype(np.int64),
            )

    # Account value scales with library growth plus price drift.
    value2 = value_cents.astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        growth = np.where(owned1 > 0, owned2 / np.maximum(owned1, 1), 1.0)
    drift = np.exp(0.08 * rng.standard_normal(n_users))
    value2 = np.round(value2 * growth * drift).astype(np.int64)
    np.maximum(value2, value_cents, out=value2)

    # Total playtime accrues another year of play for the players.
    players = (total_min > 0).astype(np.float64)
    extra = rng.gamma(
        shape=1.2, scale=(config.playtime_growth_mean - 1.0) / 1.2, size=n_users
    )
    total2 = np.round(total_min * (1.0 + players * extra)).astype(np.int64)

    # Played counts: some of the newly acquired games get launched.
    played1 = np.zeros(n_users, dtype=np.int64)
    entry_user = np.repeat(
        np.arange(n_users), np.diff(ownership.owned.indptr)
    )
    np.add.at(played1, entry_user, (playtimes.total_min > 0).astype(np.int64))
    new_games = owned2 - owned1
    played2 = played1 + rng.binomial(new_games.astype(np.int64), 0.55)
    np.minimum(played2, owned2, out=played2)

    # Fresh two-week window: same marginal, rec-correlated re-draw.
    twoweek2 = np.zeros(n_users, dtype=np.int64)
    if len(owners):
        z = 0.7 * latents.factor("rec")[owners] + 0.714 * rng.standard_normal(
            len(owners)
        )
        n_active = int(
            round((1.0 - playtime_config.twoweek_zero_share) * len(owners))
        )
        order = np.argsort(-z, kind="stable")
        active = owners[order[:n_active]]
        if len(active):
            u = rank_uniform(z[order[:n_active]])
            hours = twoweek_curve(playtime_config).ppf(u)
            twoweek2[active] = np.maximum(
                np.round(hours * 60.0).astype(np.int64), 1
            )

    return Snapshot2Table(
        owned=owned2,
        played=played2,
        value_cents=value2,
        total_min=np.maximum(total2, twoweek2),
        twoweek_min=twoweek2.astype(np.int32),
    )

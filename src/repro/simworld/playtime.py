"""Total and two-week playtime over the ownership relation (Section 6).

Per-user totals follow the Table 3 anchored marginals; the rank transform
is applied *within* the playing-owner subpopulation (exact marginal, copula
dependence preserved through the ``play``/``rec`` latent ranks).  Playtime
is then allocated across each user's library with popularity- and
multiplayer-weighted shares, which yields the paper's multiplayer
over-representation (Figure 10) and genre playtime shares (Figure 9).
A 0.01% idler mixture parks users at 80-97% of the 336-hour two-week cap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simworld.catalog import CatalogTruth
from repro.simworld.config import OwnershipConfig, PlaytimeConfig
from repro.simworld.copula import LatentFactors
from repro.simworld.marginals import AnchoredCurve, TailSpec
from repro.simworld.ownership import Ownership

__all__ = [
    "Playtimes",
    "build_playtimes",
    "total_playtime_curve",
    "twoweek_curve",
    "rank_uniform",
]


@dataclass
class Playtimes:
    """Per-library-entry playtimes (aligned with ``ownership.owned``)."""

    total_min: np.ndarray
    twoweek_min: np.ndarray
    #: Users who own games but have never launched any of them.
    never_played_mask: np.ndarray
    #: Users with nonzero two-week playtime.
    twoweek_active_mask: np.ndarray
    idler_mask: np.ndarray


def total_playtime_curve(config: PlaytimeConfig) -> AnchoredCurve:
    """Total-playtime marginal (hours) over playing owners."""
    return AnchoredCurve(
        anchors=config.total_anchors_hours,
        x_min=1.0 / 60.0,
        tail=TailSpec(
            "lognormal", config.total_tail_sigma, cap=config.total_cap_hours
        ),
        interp="lognormal",
    )


def twoweek_curve(config: PlaytimeConfig) -> AnchoredCurve:
    """Two-week playtime marginal (hours) over two-week-active users."""
    return AnchoredCurve(
        anchors=config.twoweek_nonzero_anchors_hours,
        x_min=config.twoweek_min_hours,
        tail=TailSpec(
            "pareto", config.twoweek_tail_alpha, cap=config.twoweek_cap_hours
        ),
        interp="lognormal",
    )


def rank_uniform(values: np.ndarray) -> np.ndarray:
    """Map values to exact uniform ranks in (0, 1), ties broken by index."""
    n = len(values)
    ranks = np.empty(n, dtype=np.float64)
    ranks[np.argsort(values, kind="stable")] = (np.arange(n) + 0.5) / n
    return ranks


def _row_sums(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    # reduceat pitfall: an empty segment (indptr[i] == indptr[i+1]) does
    # not sum to 0 — it returns values[indptr[i]], i.e. a *neighboring*
    # user's element.  Mask empty segments back to 0 explicitly.
    sums = np.add.reduceat(np.append(values, 0.0), indptr[:-1])
    sums[np.diff(indptr) == 0] = 0.0
    return sums


def _segment_entries(
    indptr: np.ndarray, users: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flatten the library rows of ``users`` into entry indices.

    Returns ``(entries, seg)`` where ``entries`` are positions into the
    entry arrays (each user's slice, concatenated in ``users`` order) and
    ``seg[i]`` is the position in ``users`` that entry ``i`` belongs to.
    """
    cnts = (indptr[users + 1] - indptr[users]).astype(np.int64)
    total = int(cnts.sum())
    seg = np.repeat(np.arange(len(users), dtype=np.int64), cnts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(cnts) - cnts, cnts
    )
    return indptr[users][seg] + offsets, seg


def build_playtimes(
    rng: np.random.Generator,
    latents: LatentFactors,
    ownership: Ownership,
    catalog: CatalogTruth,
    own_config: OwnershipConfig,
    config: PlaytimeConfig,
) -> Playtimes:
    """Attach total and two-week playtimes to every library entry."""
    n_users = ownership.n_users
    owned = ownership.owned
    n_entries = owned.nnz
    counts = ownership.owned_counts
    owners = np.flatnonzero(counts > 0)

    total_min = np.zeros(n_entries, dtype=np.int64)
    twoweek_min = np.zeros(n_entries, dtype=np.int32)

    # ----- who plays at all ------------------------------------------------
    never = np.zeros(n_users, dtype=bool)
    base_never = rng.random(len(owners)) < config.never_played_share
    never[owners[base_never]] = True
    # Collectors mostly do not play: their played fraction is drawn below,
    # but a large share never play anything.
    collectors = np.flatnonzero(ownership.is_collector)
    never[collectors[rng.random(len(collectors)) < 0.35]] = True

    players = owners[~never[owners]]
    if len(players) == 0:
        return Playtimes(
            total_min=total_min,
            twoweek_min=twoweek_min,
            never_played_mask=never,
            twoweek_active_mask=np.zeros(n_users, dtype=bool),
            idler_mask=np.zeros(n_users, dtype=bool),
        )

    # ----- per-user totals (exact marginal via rank transform) -------------
    u_play = rank_uniform(latents.factor("play")[players])
    total_hours = total_playtime_curve(config).ppf(u_play)
    total_hours *= np.exp(
        config.total_jitter_sigma * rng.standard_normal(len(players))
    )

    # ----- played/unplayed flags per entry ---------------------------------
    entry_user = owned.row_ids()
    entry_game = owned.indices
    genre_names = catalog.table.genre_names
    n_genres = len(genre_names)
    genre_rate = np.full(n_genres, 0.30)
    for name, rate in own_config.genre_unplayed_rates:
        genre_rate[genre_names.index(name)] = rate

    # The paper counts genre membership by *any* label, so calibrate the
    # per-entry unplayed probability against every label a game carries.
    # float32 keeps the fixed-point loop's matmuls off the bool->float64
    # conversion path.
    labels = np.stack(
        [catalog.table.has_genre(name)[entry_game] for name in genre_names],
        axis=1,
    ).astype(np.float32)
    n_labels = np.maximum(labels.sum(axis=1), 1)
    p_unplayed = (labels @ genre_rate) / n_labels

    # Library-size tilt: bigger libraries have relatively more shelfware.
    # (Computed per user, then gathered — pow is the expensive part.)
    user_tilt = (np.maximum(counts, 1) / 8.0) ** own_config.unplayed_size_slope
    size_tilt = user_tilt[entry_user]
    p_unplayed = p_unplayed * size_tilt
    # Popularity tilt: the copies people actually launch are the popular
    # titles; shelfware skews obscure.  (Also what keeps the union of
    # played games across a big group's members realistic — Figure 3.)
    pop = catalog.popularity
    pop_pct = np.zeros_like(pop)
    positive_pop = pop > 0
    ranks = np.empty(int(positive_pop.sum()))
    order = np.argsort(pop[positive_pop], kind="stable")
    ranks[order] = (np.arange(len(ranks)) + 0.5) / len(ranks)
    pop_pct[positive_pop] = ranks
    p_unplayed = p_unplayed * np.exp(
        -own_config.unplayed_popularity_slope
        * (pop_pct[entry_game] - 0.5)
    )
    # Fixed-point correction so every genre's any-label copy-weighted
    # aggregate lands on its Section 5 target despite label overlap.
    for _ in range(4):
        copies = labels.sum(axis=0).astype(np.float64)
        sums = p_unplayed @ labels
        with np.errstate(divide="ignore", invalid="ignore"):
            correction = np.where(
                sums > 0, genre_rate * copies / np.maximum(sums, 1e-12), 1.0
            )
        log_corr = (labels @ np.log(np.clip(correction, 0.2, 5.0))) / n_labels
        p_unplayed = np.clip(p_unplayed * np.exp(log_corr), 0.02, 0.97)

    # Never-players and collectors contribute forced-unplayed copies;
    # deflate the baseline so the aggregate still lands on the targets.
    forced = never[entry_user] | ownership.is_collector[entry_user]
    forced_share = float(np.mean(forced))
    if forced_share < 0.9:
        p_unplayed = np.clip(
            (p_unplayed - forced_share) / (1.0 - forced_share), 0.02, 0.97
        )

    unplayed = rng.random(n_entries) < p_unplayed
    unplayed[never[entry_user]] = True

    # Collectors: per-user played fraction in [0, collector_played_max].
    if len(collectors):
        frac = rng.uniform(0.0, own_config.collector_played_max, len(collectors))
        playing = ~never[collectors]
        if playing.any():
            ent, seg = _segment_entries(owned.indptr, collectors[playing])
            unplayed[ent] = rng.random(len(ent)) >= frac[playing][seg]

    # Every playing owner launches at least one game.
    played_per_user = _row_sums((~unplayed).astype(np.float64), owned.indptr)
    stuck = players[played_per_user[players] < 0.5]
    if len(stuck):
        width = owned.indptr[stuck + 1] - owned.indptr[stuck]
        unplayed[owned.indptr[stuck] + rng.integers(0, width)] = False

    # ----- allocate totals across played entries ---------------------------
    genre_boost = np.ones(n_entries)
    for name, factor in config.genre_stickiness:
        has = catalog.table.has_genre(name)[entry_game]
        genre_boost = np.where(has, genre_boost * factor, genre_boost)
    mp_boost = genre_boost * np.where(
        catalog.table.multiplayer[entry_game], config.multiplayer_stickiness, 1.0
    )
    noise = rng.gamma(
        shape=1.0 / config.alloc_concentration,
        scale=config.alloc_concentration,
        size=n_entries,
    )
    alloc_pop = catalog.popularity[entry_game] ** config.alloc_popularity_exponent
    weight = alloc_pop * mp_boost * (noise + 1e-12)
    weight[unplayed] = 0.0

    # Single-game devotees: concentrate (nearly) all playtime on one
    # title — picked by raw popularity, so devotees cluster on the same
    # mega-titles (the clan pattern behind Figure 3's dedicated groups).
    devotees = players[rng.random(len(players)) < config.devotee_share]
    raw_pop = catalog.popularity[entry_game]
    if len(devotees):
        ent, seg = _segment_entries(owned.indptr, devotees)
        playable = weight[ent] > 0
        vals = raw_pop[ent] * playable
        # First-max argmax per segment: sort by (segment, -value, position)
        # and take each segment's leading element.
        order = np.lexsort((ent, -vals, seg))
        firsts = order[np.searchsorted(seg[order], np.arange(len(devotees)))]
        has_playable = (
            np.bincount(seg, weights=playable, minlength=len(devotees)) > 0
        )
        weight[ent[firsts[has_playable]]] *= config.devotee_boost
    row_total = _row_sums(weight, owned.indptr)
    total_hours_per_user = np.zeros(n_users)
    total_hours_per_user[players] = total_hours
    share = weight / np.maximum(row_total[entry_user], 1e-300)
    entry_hours = share * total_hours_per_user[entry_user]
    total_min[:] = np.round(entry_hours * 60.0).astype(np.int64)
    # Played entries register at least one minute (API granularity).
    total_min[(~unplayed) & (total_min == 0) & (total_hours_per_user[entry_user] > 0)] = 1

    # ----- two-week playtime ------------------------------------------------
    n_owners = len(owners)
    n_active = int(round((1.0 - config.twoweek_zero_share) * n_owners))
    rec = latents.factor("rec")[players]
    order = np.argsort(-rec, kind="stable")
    active_players = players[order[: min(n_active, len(players))]]
    active_mask = np.zeros(n_users, dtype=bool)
    active_mask[active_players] = True

    u_rec = rank_uniform(latents.factor("rec")[active_players])
    tw_hours = twoweek_curve(config).ppf(u_rec)
    tw_hours = np.minimum(
        tw_hours
        * np.exp(
            config.twoweek_jitter_sigma
            * rng.standard_normal(len(active_players))
        ),
        config.twoweek_cap_hours,
    )

    idler_mask = np.zeros(n_users, dtype=bool)
    n_idlers = int(round(config.idler_share * n_users))
    if n_idlers > 0 and len(active_players) > 0:
        chosen = rng.choice(
            len(active_players), size=min(n_idlers, len(active_players)), replace=False
        )
        lo, hi = config.idler_range
        tw_hours[chosen] = (
            rng.uniform(lo, hi, size=len(chosen)) * config.twoweek_cap_hours
        )
        idler_mask[active_players[chosen]] = True

    tw_boost = genre_boost * np.where(
        catalog.table.multiplayer[entry_game],
        config.twoweek_multiplayer_stickiness,
        1.0,
    )
    tw_weight = (total_min.astype(np.float64) + 1.0) * tw_boost
    tw_weight[unplayed] = 0.0

    if len(active_players):
        n_act = len(active_players)
        ent, seg = _segment_entries(owned.indptr, active_players)
        keep = tw_weight[ent] > 0
        ent, seg = ent[keep], seg[keep]
        n_playable = np.bincount(seg, minlength=n_act)
        lam = max(config.twoweek_games_mean - 1.0, 0.0)
        m = np.minimum(1 + rng.poisson(lam, size=n_act), n_playable)
        # Gumbel top-m per segment replaces per-user argpartition.
        scores = np.log(tw_weight[ent]) + rng.gumbel(size=len(ent))
        order = np.lexsort((-scores, seg))
        seg_sorted = seg[order]
        bounds = np.searchsorted(seg_sorted, np.arange(n_act))
        rank = np.arange(len(ent)) - bounds[seg_sorted]
        sel = rank < m[seg_sorted]
        sel_ent = ent[order][sel]
        sel_seg = seg_sorted[sel]
        # Dirichlet(1.2·1) shares via normalized Gamma(1.2) draws.
        g = rng.gamma(1.2, size=len(sel_ent))
        sums = np.bincount(sel_seg, weights=g, minlength=n_act)
        shares = g / np.maximum(sums[sel_seg], 1e-300)
        minutes = np.maximum(
            np.round(shares * tw_hours[sel_seg] * 60.0).astype(np.int64), 1
        )
        twoweek_min[sel_ent] = np.minimum(minutes, 336 * 60).astype(np.int32)

    # Totals include the current window: total >= two-week per entry.
    np.maximum(total_min, twoweek_min.astype(np.int64), out=total_min)

    return Playtimes(
        total_min=total_min,
        twoweek_min=twoweek_min,
        never_played_mask=never,
        twoweek_active_mask=active_mask,
        idler_mask=idler_mask,
    )

"""Delta manifests: what changed between two snapshots of one world.

Two granularities, one per pipeline boundary:

- :class:`WorldDelta` — emitted by the world evolution step, phrased in
  ID *offsets* (the crawler's currency): which pre-existing accounts
  changed API-visible state, which accounts are new, and which dataset
  columns the step touched.  This is the delta-crawl's work order.
- :class:`DatasetDelta` — computed after a delta-merge by diffing the
  prior and merged datasets' column fingerprints, phrased in SteamIDs
  and appids (the serving tier's currency).  ``stale_tags()`` projects
  it onto the response cache's tag vocabulary so a store swap evicts
  only the entries a delta could have changed.

Both serialize to JSON manifests so the ``repro evolve`` CLI can hand
deltas between processes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.percentiles import ATTRIBUTE_COLUMNS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.dataset import SteamDataset

__all__ = ["WorldDelta", "DatasetDelta", "dataset_delta"]


def _as_sorted_int64(values) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64).ravel()
    return np.unique(arr)


@dataclass(frozen=True)
class WorldDelta:
    """One evolution step's changes, keyed by ID offset.

    ``changed_offsets`` holds pre-existing accounts whose API-visible
    state changed (library, playtime, or friend list — a changed edge
    marks *both* endpoints, which is what makes refetching exactly this
    set sound); ``new_offsets`` holds accounts created this step.  The
    two are disjoint.
    """

    step: int
    seed: int
    changed_offsets: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    new_offsets: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    #: Dotted column keys (``SteamDataset.iter_columns`` vocabulary,
    #: plus ``"shape"``) the step touched.
    touched_columns: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "changed_offsets", _as_sorted_int64(self.changed_offsets)
        )
        object.__setattr__(
            self, "new_offsets", _as_sorted_int64(self.new_offsets)
        )
        if np.intersect1d(self.changed_offsets, self.new_offsets).size:
            raise ValueError("changed and new offsets must be disjoint")

    @property
    def n_changed(self) -> int:
        return len(self.changed_offsets)

    @property
    def n_new(self) -> int:
        return len(self.new_offsets)

    def all_offsets(self) -> np.ndarray:
        """Changed ∪ new, sorted — the delta-crawl's refetch set."""
        return np.union1d(self.changed_offsets, self.new_offsets)

    def to_dict(self) -> dict:
        return {
            "kind": "world_delta",
            "step": self.step,
            "seed": self.seed,
            "changed_offsets": [int(x) for x in self.changed_offsets],
            "new_offsets": [int(x) for x in self.new_offsets],
            "touched_columns": list(self.touched_columns),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WorldDelta":
        if payload.get("kind") != "world_delta":
            raise ValueError("not a world-delta manifest")
        return cls(
            step=int(payload["step"]),
            seed=int(payload["seed"]),
            changed_offsets=np.array(
                payload["changed_offsets"], dtype=np.int64
            ),
            new_offsets=np.array(payload["new_offsets"], dtype=np.int64),
            touched_columns=tuple(payload["touched_columns"]),
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "WorldDelta":
        return cls.from_dict(json.loads(Path(path).read_text()))


@dataclass(frozen=True)
class DatasetDelta:
    """What a delta-merge changed, in the serving tier's vocabulary."""

    prior_fingerprint: str
    fingerprint: str
    changed_steamids: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    new_steamids: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    #: Appids owned by any changed/new user before or after the merge.
    changed_appids: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    #: Column-fingerprint entries that differ between prior and merged
    #: (includes the ``meta``/``shape`` pseudo-columns when they moved).
    changed_columns: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for name in ("changed_steamids", "new_steamids", "changed_appids"):
            object.__setattr__(
                self, name, _as_sorted_int64(getattr(self, name))
            )

    def stale_tags(self) -> frozenset[str]:
        """Response-cache tags a swap must evict (see serving/api.py).

        The projection is conservative by construction: per-user routes
        go stale with their user tag, per-app routes with their app tag
        plus the global ``app_stats`` tag (ownership percentiles
        compare every app against every other), and distribution-shaped
        routes with an ``attr:*`` tag whenever any column behind that
        attribute — or the population itself — moved.
        """
        tags: set[str] = set()
        for sid in self.changed_steamids:
            tags.add(f"user:{int(sid)}")
        for sid in self.new_steamids:
            tags.add(f"user:{int(sid)}")
        changed = set(self.changed_columns)
        population_changed = bool(
            {"shape", "acc.id_offset"} & changed
        )
        for attr, columns in ATTRIBUTE_COLUMNS.items():
            if population_changed or changed.intersection(columns):
                tags.add(f"attr:{attr}")
        if (
            population_changed
            or "cat.price_cents" in changed
            or any(c.startswith("lib.") for c in changed)
        ):
            tags.add("app_stats")
        for appid in self.changed_appids:
            tags.add(f"app:{int(appid)}")
        return frozenset(tags)

    def to_dict(self) -> dict:
        return {
            "kind": "dataset_delta",
            "prior_fingerprint": self.prior_fingerprint,
            "fingerprint": self.fingerprint,
            "changed_steamids": [int(x) for x in self.changed_steamids],
            "new_steamids": [int(x) for x in self.new_steamids],
            "changed_appids": [int(x) for x in self.changed_appids],
            "changed_columns": list(self.changed_columns),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DatasetDelta":
        if payload.get("kind") != "dataset_delta":
            raise ValueError("not a dataset-delta manifest")
        return cls(
            prior_fingerprint=payload["prior_fingerprint"],
            fingerprint=payload["fingerprint"],
            changed_steamids=np.array(
                payload["changed_steamids"], dtype=np.int64
            ),
            new_steamids=np.array(payload["new_steamids"], dtype=np.int64),
            changed_appids=np.array(
                payload["changed_appids"], dtype=np.int64
            ),
            changed_columns=tuple(payload["changed_columns"]),
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "DatasetDelta":
        return cls.from_dict(json.loads(Path(path).read_text()))


def _owned_appids(
    dataset: "SteamDataset", dense_users: np.ndarray
) -> np.ndarray:
    """Appids owned by any of ``dense_users`` (dense indices)."""
    if len(dense_users) == 0:
        return np.empty(0, dtype=np.int64)
    owned = dataset.library.owned
    products: list[np.ndarray] = []
    for user in dense_users:
        products.append(owned.row(int(user)))
    if not products:
        return np.empty(0, dtype=np.int64)
    unique = np.unique(np.concatenate(products))
    return dataset.catalog.appid[unique].astype(np.int64)


def dataset_delta(
    prior: "SteamDataset",
    merged: "SteamDataset",
    changed_steamids: np.ndarray,
    new_steamids: np.ndarray,
) -> "DatasetDelta":
    """Diff two datasets into a :class:`DatasetDelta` manifest.

    Changed columns come from comparing column fingerprints (exact, not
    declared); changed appids are every app a changed/new user owned in
    either snapshot — the set whose per-app stats could have moved.
    """
    prior_fps = prior.column_fingerprints()
    merged_fps = merged.column_fingerprints()
    changed_columns = tuple(
        sorted(
            key
            for key in set(prior_fps) | set(merged_fps)
            if prior_fps.get(key) != merged_fps.get(key)
        )
    )
    changed_steamids = _as_sorted_int64(changed_steamids)
    new_steamids = _as_sorted_int64(new_steamids)

    prior_sids = prior.accounts.steamids()
    merged_sids = merged.accounts.steamids()

    def dense_in(sids: np.ndarray, universe: np.ndarray) -> np.ndarray:
        pos = np.searchsorted(universe, sids)
        pos = np.clip(pos, 0, max(len(universe) - 1, 0))
        if len(universe) == 0:
            return np.empty(0, dtype=np.int64)
        return pos[universe[pos] == sids].astype(np.int64)

    touched = np.union1d(changed_steamids, new_steamids)
    appids = np.union1d(
        _owned_appids(prior, dense_in(touched, prior_sids)),
        _owned_appids(merged, dense_in(touched, merged_sids)),
    )
    return DatasetDelta(
        prior_fingerprint=prior.fingerprint(),
        fingerprint=merged.fingerprint(),
        changed_steamids=changed_steamids,
        new_steamids=new_steamids,
        changed_appids=appids,
        changed_columns=changed_columns,
    )

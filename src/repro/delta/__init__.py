"""``repro.delta`` — the incremental pipeline (DESIGN.md §12).

The paper's §8 evolution analysis implies repeated snapshots of one
living network; this package makes re-analysis after a small change
O(delta) instead of O(world):

- :class:`~repro.delta.model.WorldDelta` — what one evolution step
  changed (new/changed users, touched columns), emitted by
  :func:`repro.simworld.evolution.evolve`;
- :func:`~repro.delta.crawl.run_delta_crawl` — refetch only the
  changed users through the normal transport/retry/checkpoint stack
  and merge them into a prior crawled dataset, byte-identical to a
  from-scratch full crawl of the evolved world;
- :class:`~repro.delta.model.DatasetDelta` — the resulting manifest
  (changed users/apps/columns and both fingerprints), consumed by
  ``AnalyticsService.swap_store`` for targeted response-cache eviction.

Column-level stage invalidation itself lives in the engine
(``Stage.columns`` + ``SteamDataset.column_fingerprints``); this
package supplies the deltas that make it pay off.
"""

from __future__ import annotations

from repro.delta.crawl import DeltaCrawlResult, run_delta_crawl
from repro.delta.model import DatasetDelta, WorldDelta, dataset_delta

__all__ = [
    "WorldDelta",
    "DatasetDelta",
    "dataset_delta",
    "DeltaCrawlResult",
    "run_delta_crawl",
]

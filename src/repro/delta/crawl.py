"""Delta crawl: refetch only the users a :class:`WorldDelta` names.

A full crawl is O(world): three detail calls per account for months.
After one evolution step only a sliver of accounts changed, and the
:class:`~repro.delta.model.WorldDelta` says exactly which — so the
delta crawl re-runs the profile and detail phases for just those
accounts through the *same* session stack (polite pacing, retries,
checkpoints, observability) and merges the harvest into the prior
dataset with :func:`repro.store.merge.apply_user_delta`.

Byte-identity contract: the merged dataset is identical to what
:func:`repro.crawler.runner.run_full_crawl` would assemble against the
evolved world.  The load-bearing pieces are

- the delta's both-endpoints rule (a changed edge marks both users, so
  the refetch set always contains both sides of any edge that moved);
- :func:`apply_user_delta` preserving prior dtypes and per-user entry
  order;
- re-running the group-label scrape over the *merged* member counts via
  the helper shared with the full crawl, since one user leaving a group
  can change which groups make the top-250.

The catalog and achievement phases are global storefront snapshots
that user evolution cannot move, so they are carried from the prior
dataset rather than re-crawled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crawler.checkpoint import CrawlCheckpoint
from repro.crawler.details import crawl_details
from repro.crawler.retry import RetriesExhausted, RetryPolicy
from repro.crawler.runner import scrape_group_labels
from repro.crawler.session import CrawlSession, unix_to_day
from repro.delta.model import DatasetDelta, WorldDelta, dataset_delta
from repro.obs import Obs, maybe_span
from repro.steamapi.transport import Transport
from repro.store.dataset import DatasetMeta, SteamDataset
from repro.store.merge import UserDeltaBatch, apply_user_delta
from repro.store.tables import GroupType, Snapshot2Table

__all__ = ["DeltaCrawlResult", "run_delta_crawl"]

#: GetPlayerSummaries accepts at most 100 SteamIDs per request.
_SUMMARY_BATCH = 100


@dataclass
class DeltaCrawlResult:
    """A delta-merged dataset plus the manifest and crawl statistics."""

    dataset: SteamDataset
    delta: DatasetDelta
    requests_made: int
    attempts: int = 0
    retries: int = 0
    skipped: dict = field(default_factory=dict)

    @property
    def n_refetched(self) -> int:
        return len(self.delta.changed_steamids) + len(self.delta.new_steamids)


def _refetch_profiles(
    session: CrawlSession,
    steamids: np.ndarray,
    checkpoint: CrawlCheckpoint | None,
    skip_failed: bool,
) -> tuple[np.ndarray, np.ndarray, list, np.ndarray]:
    """Batched GetPlayerSummaries over a known ID list.

    Unlike the phase-1 sweep this is a point lookup, not a range scan:
    the IDs come from the delta, so empty windows and stop conditions
    do not apply.  Parsing matches the sweep exactly (timecreated to
    day, ``loccountrycode``/``loccityid`` with the same defaults).
    """
    from repro import constants

    offsets: list[int] = []
    created: list[int] = []
    countries: list = []
    cities: list[int] = []
    for start in range(0, len(steamids), _SUMMARY_BATCH):
        chunk = steamids[start : start + _SUMMARY_BATCH]
        try:
            response = session.get(
                "/ISteamUser/GetPlayerSummaries/v2",
                steamids=",".join(str(int(s)) for s in chunk),
            )
        except RetriesExhausted:
            if not skip_failed:
                raise
            if checkpoint is not None:
                checkpoint.record_failure("delta_profiles", int(chunk[0]))
            if session.obs is not None:
                session.obs.counter(
                    "crawler_skipped",
                    "Identifiers skipped after persistent failures",
                    ("phase",),
                ).inc(phase="delta_profiles")
            continue
        for player in response["response"]["players"]:
            offsets.append(int(player["steamid"]) - constants.STEAMID_BASE)
            created.append(unix_to_day(player["timecreated"]))
            countries.append(player.get("loccountrycode"))
            cities.append(int(player.get("loccityid", -1)))
    order = np.argsort(np.array(offsets, dtype=np.int64), kind="stable")
    return (
        np.array(offsets, dtype=np.int64)[order],
        np.array(created, dtype=np.int32)[order],
        [countries[i] for i in order],
        np.array(cities, dtype=np.int64)[order],
    )


def run_delta_crawl(
    transport: Transport,
    prior: SteamDataset,
    world_delta: WorldDelta,
    advertised_rate: float = 1e9,
    politeness: float = 0.85,
    label_top_groups: int = 250,
    checkpoint: CrawlCheckpoint | None = None,
    snapshot2: Snapshot2Table | None = None,
    clock=None,
    sleeper=None,
    retry: RetryPolicy | None = None,
    skip_failed: bool = False,
    obs: Obs | None = None,
) -> DeltaCrawlResult:
    """Refetch the delta's users and merge them into ``prior``.

    Accepts the same transport/pacing/retry/checkpoint/observability
    knobs as :func:`~repro.crawler.runner.run_full_crawl`; request
    volume is O(delta) — roughly ``ceil(n/100)`` profile calls plus
    three detail calls per refetched user plus ``label_top_groups``
    label scrapes.
    """
    from repro import constants

    from repro.crawler.throttle import PolitePacer

    pacer = PolitePacer(
        advertised_rate,
        politeness,
        clock=clock,
        sleeper=sleeper or (lambda s: None),
    )
    if retry is None:
        retry = RetryPolicy(sleeper=sleeper or (lambda s: None))
    session = CrawlSession(
        transport=transport, pacer=pacer, retry=retry, obs=obs
    )
    if checkpoint is None and skip_failed:
        checkpoint = CrawlCheckpoint()
    if checkpoint is not None and obs is not None and checkpoint.obs is None:
        checkpoint.obs = obs

    targets = world_delta.all_offsets()
    target_steamids = targets + constants.STEAMID_BASE

    with maybe_span(obs, "delta_crawl", accounts=len(targets)):
        with maybe_span(obs, "phase:delta_profiles"):
            offsets, created, countries, cities = _refetch_profiles(
                session, target_steamids, checkpoint, skip_failed
            )
        with maybe_span(obs, "phase:delta_details"):
            details = crawl_details(
                session,
                offsets + constants.STEAMID_BASE,
                checkpoint=checkpoint,
                skip_failed=skip_failed,
            )

        with maybe_span(obs, "assemble:delta_merge"):
            catalog_appids = prior.catalog.appid.astype(np.int64)
            product = np.searchsorted(catalog_appids, details.lib_appid)
            product = np.clip(product, 0, max(len(catalog_appids) - 1, 0))
            lib_valid = catalog_appids[product] == details.lib_appid
            batch = UserDeltaBatch(
                offsets=offsets,
                created_day=created,
                countries=countries,
                city=cities,
                edge_a_off=details.edge_a - constants.STEAMID_BASE,
                edge_b_off=details.edge_b - constants.STEAMID_BASE,
                edge_day=details.edge_day,
                lib_user=details.lib_user[lib_valid],
                lib_product=product[lib_valid],
                lib_total_min=details.lib_total_min[lib_valid],
                lib_twoweek_min=details.lib_twoweek_min[lib_valid],
                member_user=details.member_user,
                member_group=details.member_group,
            )
            merged = apply_user_delta(
                prior,
                batch,
                snapshot2=snapshot2,
                meta=DatasetMeta(scale_note="assembled by crawler"),
            )

        # A full crawl labels the top groups of *its* member counts; one
        # membership change can reshuffle that ranking, so re-label from
        # scratch over the merged counts rather than trusting the carry.
        with maybe_span(obs, "phase:delta_groups"):
            merged.groups.group_type[:] = int(GroupType.SPECIAL_INTEREST)
            merged.groups.focus_game[:] = -1
            scrape_group_labels(
                session,
                merged.groups.group_type,
                merged.groups.focus_game,
                merged.groups.members.counts(),
                catalog_appids,
                label_top_groups,
                checkpoint=checkpoint,
                skip_failed=skip_failed,
            )
            merged.invalidate_fingerprint()

        delta = dataset_delta(
            prior,
            merged,
            changed_steamids=world_delta.changed_offsets
            + constants.STEAMID_BASE,
            new_steamids=world_delta.new_offsets + constants.STEAMID_BASE,
        )

    return DeltaCrawlResult(
        dataset=merged,
        delta=delta,
        requests_made=session.requests_made,
        attempts=session.attempts,
        retries=session.retries,
        skipped=dict(checkpoint.failures()) if checkpoint else {},
    )

"""Reproduction of "Condensing Steam: Distilling the Diversity of Gamer
Behavior" (O'Neill, Vaziripour, Wu, Zappala — IMC 2016).

The package is organized bottom-up:

- :mod:`repro.steamid` — SteamID arithmetic and ID-space layout.
- :mod:`repro.simworld` — calibrated synthetic Steam universe generator
  (the substitute for the live 2013 Steam network).
- :mod:`repro.steamapi` — simulated Steam Web API (in-process and HTTP).
- :mod:`repro.crawler` — the measurement apparatus: rate-limited,
  checkpointed crawler over the API.
- :mod:`repro.store` — columnar dataset container and IO.
- :mod:`repro.tailfit` — heavy-tailed distribution fitting/classification
  (reimplementation of the ``powerlaw`` methodology used by the paper).
- :mod:`repro.core` — the paper's analyses: every table and figure.

Quickstart::

    from repro import SteamStudy
    study = SteamStudy.generate(n_users=50_000, seed=7)
    report = study.run()
    print(report.render())
"""

from repro.core.study import SteamStudy
from repro.simworld.config import WorldConfig
from repro.simworld.world import SteamWorld
from repro.store.dataset import SteamDataset

__version__ = "1.0.0"

__all__ = [
    "SteamStudy",
    "SteamWorld",
    "SteamDataset",
    "WorldConfig",
    "__version__",
]

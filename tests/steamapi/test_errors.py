"""Error taxonomy and status mapping."""

import pytest

from repro.steamapi.errors import (
    ApiError,
    BadRequestError,
    DeadlineExceededError,
    NotFoundError,
    OverloadedError,
    RateLimitedError,
    ServiceUnavailableError,
    UnauthorizedError,
    error_for_status,
)


class TestErrorTaxonomy:
    @pytest.mark.parametrize(
        "cls,status",
        [
            (BadRequestError, 400),
            (UnauthorizedError, 401),
            (NotFoundError, 404),
            (RateLimitedError, 429),
        ],
    )
    def test_status_codes(self, cls, status):
        assert cls.status == status

    def test_error_for_status_roundtrip(self):
        for status in (400, 401, 404, 429):
            error = error_for_status(status, "boom")
            assert error.status == status
            assert error.message == "boom"

    def test_unknown_status_is_generic(self):
        assert type(error_for_status(418)) is ApiError

    def test_serving_statuses_are_typed(self):
        assert type(error_for_status(503)) is ServiceUnavailableError
        assert type(error_for_status(504)) is DeadlineExceededError

    def test_overloaded_shares_rate_limit_contract(self):
        # A shed request looks like a rate limit to clients: same 429,
        # same Retry-After plumbing — but a bare 429 reconstructs to
        # the canonical RateLimitedError, never the subclass.
        error = OverloadedError(retry_after=0.25, reason="breaker")
        assert isinstance(error, RateLimitedError)
        assert error.status == 429
        assert error.retry_after == 0.25
        assert error.reason == "breaker"
        assert type(error_for_status(429)) is RateLimitedError

    def test_rate_limited_retry_after_default(self):
        assert RateLimitedError().retry_after == 1.0

    def test_all_are_api_errors(self):
        for cls in (
            BadRequestError,
            UnauthorizedError,
            NotFoundError,
            RateLimitedError,
        ):
            assert issubclass(cls, ApiError)

"""Private profiles: the modern-API gate the paper no longer passes."""

import numpy as np
import pytest

from repro.crawler.details import crawl_details
from repro.crawler.retry import RetryPolicy
from repro.crawler.session import CrawlSession
from repro.crawler.throttle import PolitePacer
from repro.steamapi.errors import PrivateProfileError
from repro.steamapi.service import DEFAULT_API_KEY, SteamApiService
from repro.steamapi.transport import InProcessTransport


@pytest.fixture(scope="module")
def private_service(small_world):
    return SteamApiService.from_world(
        small_world, private_rate=0.3, private_seed=9
    )


class TestPrivateProfiles:
    def test_default_is_fully_public(self, small_world):
        service = SteamApiService.from_world(small_world)
        assert not service.private_mask.any()

    def test_private_rate_applied(self, private_service):
        share = private_service.private_mask.mean()
        assert share == pytest.approx(0.3, abs=0.03)

    def test_summaries_still_visible(self, private_service, small_world):
        """Profile existence is public even when details are private."""
        sids = small_world.dataset.accounts.steamids()
        private_user = int(np.flatnonzero(private_service.private_mask)[0])
        response = private_service.get_player_summaries(
            DEFAULT_API_KEY, [int(sids[private_user])]
        )
        assert len(response["response"]["players"]) == 1

    def test_details_refused(self, private_service, small_world):
        sids = small_world.dataset.accounts.steamids()
        private_user = int(np.flatnonzero(private_service.private_mask)[0])
        sid = int(sids[private_user])
        for call in (
            private_service.get_friend_list,
            private_service.get_owned_games,
            private_service.get_user_group_list,
        ):
            with pytest.raises(PrivateProfileError):
                call(DEFAULT_API_KEY, sid)

    def test_public_profiles_unaffected(self, private_service, small_world):
        sids = small_world.dataset.accounts.steamids()
        public_user = int(np.flatnonzero(~private_service.private_mask)[0])
        payload = private_service.get_owned_games(
            DEFAULT_API_KEY, int(sids[public_user])
        )
        assert "games" in payload["response"]

    def test_http_status_is_403(self, private_service, small_world):
        from repro.steamapi.http_client import HttpTransport
        from repro.steamapi.http_server import serve

        sids = small_world.dataset.accounts.steamids()
        private_user = int(np.flatnonzero(private_service.private_mask)[0])
        with serve(private_service) as server:
            transport = HttpTransport(server.base_url)
            with pytest.raises(PrivateProfileError):
                transport.request(
                    "/IPlayerService/GetOwnedGames/v1",
                    {"key": DEFAULT_API_KEY, "steamid": int(sids[private_user])},
                )

    def test_crawler_skips_private_gracefully(
        self, private_service, small_world
    ):
        session = CrawlSession(
            transport=InProcessTransport(private_service),
            pacer=PolitePacer(1e9, sleeper=lambda s: None),
            retry=RetryPolicy(sleeper=lambda s: None),
        )
        steamids = small_world.dataset.accounts.steamids()[:500]
        details = crawl_details(session, steamids)
        expected_private = int(private_service.private_mask[:500].sum())
        assert details.n_private == expected_private
        # Harvest covers only the public subset.
        public = ~private_service.private_mask[:500]
        expected_entries = int(
            small_world.dataset.owned_counts()[:500][public].sum()
        )
        assert len(details.lib_appid) == expected_entries

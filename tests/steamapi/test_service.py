"""Simulated Steam Web API endpoint semantics."""

import numpy as np
import pytest

from repro import constants
from repro.steamapi.errors import (
    BadRequestError,
    NotFoundError,
    RateLimitedError,
    UnauthorizedError,
)
from repro.steamapi.models import GROUP_ID_BASE
from repro.steamapi.ratelimit import VirtualClock
from repro.steamapi.service import DEFAULT_API_KEY, SteamApiService


@pytest.fixture(scope="module")
def service(small_world):
    return SteamApiService.from_world(small_world)


@pytest.fixture(scope="module")
def a_steamid(small_world):
    # A user guaranteed to have friends and games.
    ds = small_world.dataset
    candidates = np.flatnonzero(
        (ds.friend_counts() > 2) & (ds.owned_counts() > 2)
    )
    return int(ds.accounts.steamids()[candidates[0]]), int(candidates[0])


class TestPlayerSummaries:
    def test_batch_returns_only_valid_accounts(self, service, small_world):
        sids = small_world.dataset.accounts.steamids()
        query = [int(sids[0]), int(sids[1]), constants.STEAMID_BASE + 10**9]
        response = service.get_player_summaries(DEFAULT_API_KEY, query)
        players = response["response"]["players"]
        assert len(players) == 2

    def test_rejects_oversized_batch(self, service):
        with pytest.raises(BadRequestError):
            service.get_player_summaries(
                DEFAULT_API_KEY, list(range(101))
            )

    def test_country_only_when_reported(self, service, small_world):
        ds = small_world.dataset
        reporter = int(np.flatnonzero(ds.accounts.country >= 0)[0])
        hidden = int(np.flatnonzero(ds.accounts.country < 0)[0])
        sids = ds.accounts.steamids()
        response = service.get_player_summaries(
            DEFAULT_API_KEY, [int(sids[reporter]), int(sids[hidden])]
        )
        players = {
            int(p["steamid"]): p for p in response["response"]["players"]
        }
        assert "loccountrycode" in players[int(sids[reporter])]
        assert "loccountrycode" not in players[int(sids[hidden])]

    def test_timecreated_consistent(self, service, small_world):
        ds = small_world.dataset
        sid = int(ds.accounts.steamids()[0])
        response = service.get_player_summaries(DEFAULT_API_KEY, [sid])
        created = response["response"]["players"][0]["timecreated"]
        from repro.crawler.session import unix_to_day

        assert unix_to_day(created) == int(ds.accounts.created_day[0])


class TestFriendList:
    def test_reciprocal(self, service, a_steamid, small_world):
        sid, user = a_steamid
        friends = service.get_friend_list(DEFAULT_API_KEY, sid)
        others = [
            int(f["steamid"]) for f in friends["friendslist"]["friends"]
        ]
        assert len(others) == small_world.dataset.friend_counts()[user]
        # Reciprocity: we appear in a friend's list.
        back = service.get_friend_list(DEFAULT_API_KEY, others[0])
        assert sid in [
            int(f["steamid"]) for f in back["friendslist"]["friends"]
        ]

    def test_unknown_steamid_404(self, service):
        with pytest.raises(NotFoundError):
            service.get_friend_list(
                DEFAULT_API_KEY, constants.STEAMID_BASE + 10**10
            )

    def test_bad_steamid_400(self, service):
        with pytest.raises(BadRequestError):
            service.get_friend_list(DEFAULT_API_KEY, 123)


class TestOwnedGames:
    def test_playtimes_match_dataset(self, service, a_steamid, small_world):
        sid, user = a_steamid
        ds = small_world.dataset
        response = service.get_owned_games(DEFAULT_API_KEY, sid)
        games = response["response"]["games"]
        assert response["response"]["game_count"] == ds.owned_counts()[user]
        total = sum(g["playtime_forever"] for g in games)
        assert total == int(ds.library.user_total_min()[user])

    def test_twoweek_field_omitted_when_zero(self, service, small_world):
        ds = small_world.dataset
        owners = np.flatnonzero(
            (ds.owned_counts() > 0) & (ds.library.user_twoweek_min() == 0)
        )
        sid = int(ds.accounts.steamids()[owners[0]])
        response = service.get_owned_games(DEFAULT_API_KEY, sid)
        for game in response["response"]["games"]:
            assert "playtime_2weeks" not in game


class TestGroupsAndCatalog:
    def test_group_list_gids(self, service, small_world):
        ds = small_world.dataset
        member = int(np.flatnonzero(ds.membership_counts() > 0)[0])
        sid = int(ds.accounts.steamids()[member])
        response = service.get_user_group_list(DEFAULT_API_KEY, sid)
        gids = [g["gid"] for g in response["response"]["groups"]]
        assert len(gids) == ds.membership_counts()[member]
        assert all(g >= GROUP_ID_BASE for g in gids)

    def test_app_list_full_catalog(self, service, small_world):
        response = service.get_app_list(DEFAULT_API_KEY)
        assert (
            len(response["applist"]["apps"])
            == small_world.dataset.catalog.n_products
        )

    def test_appdetails_payload(self, service, small_world):
        cat = small_world.dataset.catalog
        appid = int(cat.appid[0])
        payload = service.appdetails(DEFAULT_API_KEY, appid)
        body = payload[str(appid)]["data"]
        assert body["steam_appid"] == appid
        assert body["price_overview"]["final"] == int(cat.price_cents[0])
        genres = {g["description"] for g in body["genres"]}
        for name in cat.genre_names:
            assert (name in genres) == bool(cat.has_genre(name)[0])

    def test_appdetails_unknown_app(self, service):
        with pytest.raises(NotFoundError):
            service.appdetails(DEFAULT_API_KEY, 999_999_999)

    def test_achievement_percentages(self, service, small_world):
        ach = small_world.dataset.achievements
        product = int(np.flatnonzero(ach.count > 0)[0])
        appid = int(small_world.dataset.catalog.appid[product])
        payload = service.get_global_achievement_percentages(
            DEFAULT_API_KEY, appid
        )
        entries = payload["achievementpercentages"]["achievements"]
        assert len(entries) == int(ach.count[product])

    def test_group_profile(self, service, small_world):
        groups = small_world.dataset.groups
        payload = service.group_profile(DEFAULT_API_KEY, GROUP_ID_BASE + 0)
        assert payload["group"]["type"] == int(groups.group_type[0])


class TestAuthAndRateLimit:
    def test_requires_key(self, service):
        with pytest.raises(UnauthorizedError):
            service.get_app_list(None)
        with pytest.raises(UnauthorizedError):
            service.get_app_list("NOT-A-KEY")

    def test_rate_limit_enforced(self, small_world):
        clock = VirtualClock()
        service = SteamApiService.from_world(
            small_world, rate_per_second=1.0, burst=2.0, clock=clock
        )
        service.get_app_list(DEFAULT_API_KEY)
        service.get_app_list(DEFAULT_API_KEY)
        with pytest.raises(RateLimitedError) as info:
            service.get_app_list(DEFAULT_API_KEY)
        assert info.value.retry_after > 0
        clock.advance(1.1)
        service.get_app_list(DEFAULT_API_KEY)  # refilled

    def test_request_counts(self, small_world):
        service = SteamApiService.from_world(small_world)
        service.get_app_list(DEFAULT_API_KEY)
        service.get_app_list(DEFAULT_API_KEY)
        assert service.request_counts["GetAppList"] == 2


class TestDispatch:
    def test_routes_all_paths(self, service, a_steamid):
        sid, _ = a_steamid
        key = DEFAULT_API_KEY
        assert "response" in service.dispatch(
            "/ISteamUser/GetPlayerSummaries/v2",
            {"key": key, "steamids": str(sid)},
        )
        assert "friendslist" in service.dispatch(
            "/ISteamUser/GetFriendList/v1", {"key": key, "steamid": sid}
        )
        assert "response" in service.dispatch(
            "/IPlayerService/GetOwnedGames/v1", {"key": key, "steamid": sid}
        )
        assert "applist" in service.dispatch(
            "/ISteamApps/GetAppList/v2", {"key": key}
        )

    def test_unknown_path_404(self, service):
        with pytest.raises(NotFoundError):
            service.dispatch("/nope", {"key": DEFAULT_API_KEY})

"""Deterministic fault injection: the FaultPlan / FaultInjectingTransport."""

import json

import pytest

from repro.steamapi.errors import (
    ApiError,
    MalformedResponseError,
    RateLimitedError,
    RequestTimeoutError,
)
from repro.steamapi.faults import (
    FAULT_KINDS,
    FaultInjectingTransport,
    FaultPlan,
    FaultSpec,
)


class Echo:
    """Inner transport that records and answers every request."""

    def __init__(self):
        self.calls = 0

    def request(self, path, params):
        self.calls += 1
        return {"path": path, "ok": True}


def _drive(transport, n, path="/x"):
    """Run n requests, tallying outcomes by error class (None = clean)."""
    outcomes = []
    for _ in range(n):
        try:
            transport.request(path, {})
            outcomes.append(None)
        except ApiError as exc:
            outcomes.append(type(exc).__name__)
    return outcomes


class TestFaultSpec:
    def test_rejects_probability_overflow(self):
        with pytest.raises(ValueError):
            FaultSpec(rate_limit=0.6, server_error=0.6)

    def test_rejects_bad_burst(self):
        with pytest.raises(ValueError):
            FaultSpec(burst=0)

    def test_uniform_plan_splits_rate(self):
        plan = FaultPlan.uniform(0.2, seed=3)
        assert plan.default.total_rate == pytest.approx(0.2)
        for kind in FAULT_KINDS:
            assert getattr(plan.default, kind) == pytest.approx(0.05)


class TestDeterminism:
    def test_same_seed_same_fault_sequence(self):
        plan = FaultPlan.uniform(0.3, seed=11)
        a = _drive(FaultInjectingTransport(Echo(), plan), 500)
        b = _drive(FaultInjectingTransport(Echo(), plan), 500)
        assert a == b
        assert any(x is not None for x in a)

    def test_different_seed_different_sequence(self):
        a = _drive(
            FaultInjectingTransport(Echo(), FaultPlan.uniform(0.3, seed=1)),
            500,
        )
        b = _drive(
            FaultInjectingTransport(Echo(), FaultPlan.uniform(0.3, seed=2)),
            500,
        )
        assert a != b

    def test_counters_track_outcomes(self):
        faulty = FaultInjectingTransport(
            Echo(), FaultPlan.uniform(0.4, seed=5)
        )
        outcomes = _drive(faulty, 1000)
        injected = sum(1 for x in outcomes if x is not None)
        assert faulty.total_injected == injected
        assert faulty.requests_seen == 1000
        assert sum(faulty.faults_by_endpoint.values()) == injected
        # ~40% fault rate: all four kinds should have fired.
        assert all(faulty.fault_counts[k] > 0 for k in FAULT_KINDS)


class TestFaultKinds:
    def _only(self, **kwargs):
        return FaultInjectingTransport(
            Echo(), FaultPlan(seed=0, default=FaultSpec(**kwargs))
        )

    def test_rate_limit_carries_retry_after_in_range(self):
        faulty = self._only(rate_limit=1.0, retry_after=(0.5, 1.5))
        for _ in range(20):
            with pytest.raises(RateLimitedError) as info:
                faulty.request("/x", {})
            assert 0.5 <= info.value.retry_after <= 1.5

    def test_server_error_is_generic_transient(self):
        faulty = self._only(server_error=1.0)
        with pytest.raises(ApiError) as info:
            faulty.request("/x", {})
        assert info.value.status == 500

    def test_timeout_kind(self):
        faulty = self._only(timeout=1.0)
        with pytest.raises(RequestTimeoutError):
            faulty.request("/x", {})

    def test_malformed_truncates_real_payload(self):
        faulty = self._only(malformed=1.0)
        with pytest.raises(MalformedResponseError) as info:
            faulty.request("/x", {})
        body = info.value.body
        assert body is not None
        full = json.dumps({"path": "/x", "ok": True}).encode()
        assert body == full[: len(body)]  # a true prefix of the payload
        assert len(body) < len(full)
        with pytest.raises(ValueError):
            json.loads(body)  # and it really is broken JSON
        assert faulty.inner.calls == 1  # the inner request did happen

    def test_clean_requests_pass_through(self):
        faulty = self._only()  # all probabilities zero
        assert _drive(faulty, 50) == [None] * 50
        assert faulty.total_injected == 0


class TestBursts:
    def test_burst_repeats_same_kind(self):
        plan = FaultPlan(
            seed=9, default=FaultSpec(server_error=0.1, burst=4)
        )
        outcomes = _drive(FaultInjectingTransport(Echo(), plan), 2000)
        # Every fault run must come in maximal stretches of >= 4 (two
        # triggers can abut, so longer runs are fine).
        runs = []
        current = 0
        for outcome in outcomes:
            if outcome is not None:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        # The trailing run may be cut off by the end of the drive, so
        # only completed runs (followed by a clean request) count.
        assert runs, "no faults fired"
        assert all(run >= 4 for run in runs)

    def test_burst_of_one_is_independent(self):
        plan = FaultPlan(seed=9, default=FaultSpec(server_error=0.5, burst=1))
        faulty = FaultInjectingTransport(Echo(), plan)
        _drive(faulty, 200)
        assert faulty._chooser._burst_left == 0


class TestPerEndpointSpecs:
    def test_longest_prefix_wins(self):
        plan = FaultPlan(
            seed=0,
            default=FaultSpec(),
            endpoints={
                "/ISteamUser": FaultSpec(rate_limit=1.0),
                "/ISteamUser/GetFriendList": FaultSpec(timeout=1.0),
            },
        )
        faulty = FaultInjectingTransport(Echo(), plan)
        with pytest.raises(RequestTimeoutError):
            faulty.request("/ISteamUser/GetFriendList/v1", {})
        with pytest.raises(RateLimitedError):
            faulty.request("/ISteamUser/GetPlayerSummaries/v2", {})
        # No spec matches the storefront: clean.
        assert faulty.request("/appdetails", {})["ok"]

    def test_faults_by_endpoint_counter(self):
        plan = FaultPlan(
            seed=0,
            endpoints={"/a": FaultSpec(server_error=1.0)},
        )
        faulty = FaultInjectingTransport(Echo(), plan)
        for _ in range(3):
            with pytest.raises(ApiError):
                faulty.request("/a", {})
        faulty.request("/b", {})
        assert faulty.faults_by_endpoint == {"/a": 3}

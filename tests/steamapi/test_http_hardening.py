"""Socket-level protections and internal-error containment.

The server must survive hostile or broken clients: slow-loris peers
dribbling header bytes, absurd request lines, header floods — and its
own bugs, which must come back as opaque 500s instead of killing the
handler thread or leaking internals.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request

import pytest

from repro.obs import Obs
from repro.steamapi.http_server import HttpLimits, serve_dispatch


def _ok_dispatch(path, params):
    return {"ok": True, "path": path}


class TestSlowClientProtection:
    def test_slow_loris_connection_is_closed(self):
        """A client that sends half a request line and stalls must be
        disconnected after the socket timeout, not hold a handler
        thread forever."""
        limits = HttpLimits(socket_timeout=0.3)
        with serve_dispatch(
            _ok_dispatch, access_log=False, limits=limits
        ) as server:
            host, port = server.server.server_address[:2]
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(b"GET /slow")  # never finishes the line
                start = time.monotonic()
                # The server times out the read and tears down: we see
                # EOF (empty read) rather than hanging.
                sock.settimeout(10)
                data = sock.recv(1024)
                elapsed = time.monotonic() - start
            assert data == b""
            assert elapsed < 8
            # The server is still healthy for well-behaved clients.
            with urllib.request.urlopen(
                server.base_url + "/fine", timeout=10
            ) as response:
                assert response.status == 200

    def test_no_timeout_by_default(self):
        """Embedded servers keep the historical block-forever reads; a
        half-sent request simply waits (bounded here by the test)."""
        with serve_dispatch(_ok_dispatch, access_log=False) as server:
            host, port = server.server.server_address[:2]
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(b"GET /slow")
                sock.settimeout(0.5)
                with pytest.raises(socket.timeout):
                    sock.recv(1024)  # the *client* times out, not the server


class TestRequestLimits:
    def test_oversized_request_line_is_414(self):
        limits = HttpLimits(max_request_line=200)
        with serve_dispatch(
            _ok_dispatch, access_log=False, limits=limits
        ) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    server.base_url + "/" + "x" * 500, timeout=10
                )
            assert excinfo.value.code == 414

    def test_header_flood_is_431(self):
        limits = HttpLimits(max_headers=8)
        with serve_dispatch(
            _ok_dispatch, access_log=False, limits=limits
        ) as server:
            request = urllib.request.Request(server.base_url + "/thing")
            for i in range(20):
                request.add_header(f"X-Flood-{i}", "y")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 431

    def test_normal_requests_pass_under_limits(self):
        limits = HttpLimits(max_request_line=512, max_headers=32)
        with serve_dispatch(
            _ok_dispatch, access_log=False, limits=limits
        ) as server:
            with urllib.request.urlopen(
                server.base_url + "/fine?q=1", timeout=10
            ) as response:
                assert response.status == 200


class TestInternalErrorContainment:
    def test_non_api_error_becomes_opaque_500(self):
        """A server bug (non-ApiError escaping dispatch) must yield an
        opaque 500 — no message, no traceback — and be counted."""

        class Boom(RuntimeError):
            pass

        def dispatch(path, params):
            if path == "/boom":
                raise Boom("secret internals: db password is hunter2")
            return {"ok": True}

        obs = Obs()
        with serve_dispatch(dispatch, access_log=False, obs=obs) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.base_url + "/boom", timeout=10)
            assert excinfo.value.code == 500
            body = json.loads(excinfo.value.read())
            # Opaque: the error name and nothing else; internals must
            # not leak to the client.
            assert body == {"error": "InternalError"}
            counter = obs.counter("http_internal_errors", labelnames=("path",))
            assert counter.value(path="/boom") == 1
            # The handler thread survived: the next request works.
            with urllib.request.urlopen(
                server.base_url + "/fine", timeout=10
            ) as response:
                assert response.status == 200

    def test_internal_errors_use_route_template_label(self):
        def dispatch(path, params):
            raise RuntimeError("bug")

        obs = Obs()
        with serve_dispatch(
            dispatch,
            access_log=False,
            obs=obs,
            route_of=lambda path: "/users/<id>",
        ) as server:
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    server.base_url + "/users/12345", timeout=10
                )
            counter = obs.counter("http_internal_errors", labelnames=("path",))
            assert counter.value(path="/users/<id>") == 1

"""Token-bucket rate limiter."""

import pytest

from repro.steamapi.ratelimit import TokenBucket, VirtualClock


class TestVirtualClock:
    def test_advances(self):
        clock = VirtualClock()
        assert clock() == 0.0
        clock.advance(2.5)
        assert clock() == 2.5

    def test_rejects_rewind(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)


class TestTokenBucket:
    def test_burst_capacity(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refills_over_time(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        bucket.try_acquire(2.0)
        assert not bucket.try_acquire()
        clock.advance(0.5)  # refills one token
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_never_exceeds_burst(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
        clock.advance(100.0)
        assert bucket.available == pytest.approx(5.0)

    def test_wait_time(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        bucket.try_acquire()
        assert bucket.wait_time() == pytest.approx(0.5)
        clock.advance(0.25)
        assert bucket.wait_time() == pytest.approx(0.25)

    def test_wait_time_zero_when_available(self):
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=VirtualClock())
        assert bucket.wait_time() == 0.0

    def test_sustained_rate(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=5.0, burst=1.0, clock=clock)
        granted = 0
        for _ in range(1000):
            clock.advance(0.1)
            if bucket.try_acquire():
                granted += 1
        # 100 seconds at 5/s.
        assert granted == pytest.approx(500, abs=5)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)

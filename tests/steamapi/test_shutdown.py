"""Shutdown regression: ``close()`` must be bounded with a request stuck
in flight.

Before the fix, ``ThreadingHTTPServer`` ran with its defaults —
non-daemonic handler threads plus ``block_on_close=True`` — so
``server_close()`` joined every handler thread forever.  One client
wedged mid-request (or simply holding a keep-alive socket open) made
``repro serve`` / ``repro serve-analytics`` impossible to stop without
``kill -9``.  Now handler threads are daemonic and tracked, and
``close()`` drains them against a deadline, reporting the stragglers.
"""

from __future__ import annotations

import threading
import time
import urllib.request

import pytest

from repro.obs import Obs
from repro.steamapi.http_server import serve_dispatch


def _wedgeable_server(obs=None):
    """A server whose ``/wedge`` route blocks until released."""
    release = threading.Event()
    entered = threading.Event()

    def dispatch(path, params):
        if path == "/wedge":
            entered.set()
            # A handler stuck behind a slow upstream / stalled
            # client: blocks until the test releases it.
            release.wait(timeout=30)
        return {"ok": True}

    server = serve_dispatch(dispatch, access_log=False, obs=obs)
    server.drain_timeout = 0.5
    return server, entered, release


class TestBoundedClose:
    def test_close_returns_despite_wedged_handler(self):
        server, entered, release = _wedgeable_server()
        try:
            client = threading.Thread(
                target=lambda: urllib.request.urlopen(
                    server.base_url + "/wedge", timeout=30
                ).read(),
                daemon=True,
            )
            client.start()
            assert entered.wait(timeout=10), "request never reached dispatch"

            closed: dict[str, object] = {}

            def close():
                closed["stuck"] = server.close()

            closer = threading.Thread(target=close, daemon=True)
            start = time.monotonic()
            closer.start()
            closer.join(timeout=10)
            elapsed = time.monotonic() - start
            # The regression: this join never returned.
            assert not closer.is_alive(), "close() hung on a busy handler"
            assert elapsed < 8
            stuck = closed["stuck"]
            assert len(stuck) == 1  # the wedged handler was reported
            assert all(t.daemon for t in stuck)
        finally:
            release.set()

    def test_drain_leftovers_are_counted_and_logged(self, caplog):
        """Callers routinely drop ``close()``'s return value, so an
        abandoned handler must also surface through the log and the
        ``http_drain_leftover_threads`` counter."""
        obs = Obs()
        server, entered, release = _wedgeable_server(obs=obs)
        try:
            client = threading.Thread(
                target=lambda: urllib.request.urlopen(
                    server.base_url + "/wedge", timeout=30
                ).read(),
                daemon=True,
            )
            client.start()
            assert entered.wait(timeout=10)
            with caplog.at_level("WARNING", logger="repro.steamapi.http"):
                stuck = server.close()
            assert len(stuck) == 1
            counter = obs.counter("http_drain_leftover_threads")
            assert counter.value() == 1
            assert any(
                "drain deadline" in record.message for record in caplog.records
            )
        finally:
            release.set()

    def test_clean_close_leaves_counter_untouched(self):
        obs = Obs()
        server = serve_dispatch(
            lambda path, params: {"ok": True}, access_log=False, obs=obs
        )
        urllib.request.urlopen(server.base_url + "/ping", timeout=10).read()
        assert server.close() == []
        assert obs.counter("http_drain_leftover_threads").value() == 0

    def test_clean_close_reports_no_stragglers(self):
        server = serve_dispatch(
            lambda path, params: {"ok": True}, access_log=False
        )
        with urllib.request.urlopen(
            server.base_url + "/anything", timeout=10
        ) as response:
            assert response.status == 200
        stuck = server.close()
        assert stuck == []

    def test_handler_threads_are_daemonic(self):
        seen: dict[str, bool] = {}
        ready = threading.Event()

        def dispatch(path, params):
            seen["daemon"] = threading.current_thread().daemon
            ready.set()
            return {"ok": True}

        server = serve_dispatch(dispatch, access_log=False)
        try:
            urllib.request.urlopen(server.base_url + "/x", timeout=10).read()
            assert ready.wait(timeout=10)
            assert seen["daemon"] is True
        finally:
            server.close()

    def test_server_usable_until_close(self):
        server = serve_dispatch(
            lambda path, params: {"path": path}, access_log=False
        )
        try:
            for i in range(5):
                with urllib.request.urlopen(
                    server.base_url + f"/ping/{i}", timeout=10
                ) as response:
                    assert response.status == 200
        finally:
            assert server.close() == []
        # After close the socket is gone: new connections must fail.
        with pytest.raises(OSError):
            urllib.request.urlopen(server.base_url + "/ping", timeout=2)

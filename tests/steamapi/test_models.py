"""JSON payload parsing."""

from repro.steamapi.models import (
    AchievementPercent,
    AppDetails,
    FriendRecord,
    GroupRecord,
    GROUP_ID_BASE,
    OwnedGame,
    PlayerSummary,
)


class TestParsers:
    def test_player_summary(self):
        summary = PlayerSummary.from_json(
            {
                "steamid": "76561197960265729",
                "timecreated": 1066003200,
                "loccountrycode": "United States",
            }
        )
        assert summary.steamid == 76561197960265729
        assert summary.country == "United States"
        assert summary.city_id is None

    def test_friend_record_defaults(self):
        record = FriendRecord.from_json({"steamid": "76561197960265730"})
        assert record.friend_since == 0

    def test_owned_game_defaults(self):
        game = OwnedGame.from_json({"appid": 440})
        assert game.playtime_forever == 0
        assert game.playtime_2weeks == 0

    def test_group_record_index(self):
        record = GroupRecord.from_json({"gid": GROUP_ID_BASE + 17})
        assert record.index == 17

    def test_app_details(self):
        details = AppDetails.from_json(
            440,
            {
                "success": True,
                "data": {
                    "type": "game",
                    "genres": [
                        {"id": "0", "description": "Action"},
                        {"id": "2", "description": "Indie"},
                    ],
                    "categories": [{"id": 1, "description": "Multi-player"}],
                    "price_overview": {"final": 999},
                    "metacritic": {"score": 88},
                    "release_date": {"day_index": 1000},
                },
            },
        )
        assert details.genres == ("Action", "Indie")
        assert details.multiplayer
        assert details.price_cents == 999
        assert details.metacritic == 88

    def test_app_details_free_game(self):
        details = AppDetails.from_json(
            570,
            {
                "success": True,
                "data": {
                    "type": "game",
                    "categories": [
                        {"id": 2, "description": "Single-player"}
                    ],
                },
            },
        )
        assert details.price_cents == 0
        assert not details.multiplayer
        assert details.genres == ()

    def test_achievement_percent(self):
        entry = AchievementPercent.from_json(
            {"name": "ACH_0", "percent": 52.5}
        )
        assert entry.percent == 52.5

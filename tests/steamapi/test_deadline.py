"""Deadline propagation: parsing, scoping, layer checks, HTTP mapping."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.clock import FakeClock
from repro.steamapi.deadline import (
    DEADLINE_HEADER,
    MAX_BUDGET_SECONDS,
    Deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
    effective_budget,
    parse_deadline_value,
)
from repro.steamapi.errors import BadRequestError, DeadlineExceededError
from repro.steamapi.http_server import HttpLimits, serve_dispatch


class TestDeadline:
    def test_remaining_counts_down(self):
        clock = FakeClock()
        deadline = Deadline.after(5.0, clock=clock)
        assert deadline.remaining() == pytest.approx(5.0)
        clock.advance(3.0)
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired()
        clock.advance(2.5)
        assert deadline.expired()

    def test_check_raises_typed_504_naming_the_layer(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        deadline.check("store")  # within budget: no-op
        clock.advance(1.5)
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check("store")
        assert excinfo.value.status == 504
        assert excinfo.value.layer == "store"
        assert "store" in str(excinfo.value)


class TestScope:
    def test_scope_installs_and_restores(self):
        assert current_deadline() is None
        deadline = Deadline.after(1.0, clock=FakeClock())
        with deadline_scope(deadline):
            assert current_deadline() is deadline
        assert current_deadline() is None

    def test_none_scope_is_a_noop(self):
        with deadline_scope(None):
            assert current_deadline() is None
        check_deadline("anywhere")  # no ambient deadline: never raises

    def test_check_deadline_uses_ambient(self):
        clock = FakeClock()
        with deadline_scope(Deadline.after(1.0, clock=clock)):
            check_deadline("cache")
            clock.advance(2.0)
            with pytest.raises(DeadlineExceededError) as excinfo:
                check_deadline("cache")
            assert excinfo.value.layer == "cache"

    def test_scopes_nest(self):
        clock = FakeClock()
        outer = Deadline.after(10.0, clock=clock)
        inner = Deadline.after(1.0, clock=clock)
        with deadline_scope(outer):
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer


class TestParsing:
    def test_parse_accepts_fractional_seconds(self):
        assert parse_deadline_value("2.5") == 2.5
        assert parse_deadline_value(None) is None

    def test_parse_clamps_absurd_budgets(self):
        assert parse_deadline_value("9999999") == MAX_BUDGET_SECONDS

    @pytest.mark.parametrize("raw", ["soon", "", "nan-ish", "0", "-3"])
    def test_parse_rejects_malformed_or_nonpositive(self, raw):
        with pytest.raises(BadRequestError):
            parse_deadline_value(raw)

    def test_effective_budget_takes_the_tighter(self):
        assert effective_budget(None, None) is None
        assert effective_budget(2.0, None) == 2.0
        assert effective_budget(None, 5.0) == 5.0
        assert effective_budget(2.0, 5.0) == 2.0
        assert effective_budget(7.0, 5.0) == 5.0


class TestHttpIntegration:
    def test_header_budget_expires_into_504(self):
        """A dispatch that outlives the client's budget gets a 504."""

        def dispatch(path, params):
            # Cooperative: the handler checks at its own boundary.
            check_deadline("dispatch")
            return {"ok": True}

        with serve_dispatch(dispatch, access_log=False) as server:
            # Stall happens *before* dispatch runs here: emulate by a
            # budget so small the header-parse → dispatch gap eats it.
            request = urllib.request.Request(
                server.base_url + "/thing",
                headers={DEADLINE_HEADER: "0.000001"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 504
            body = json.loads(excinfo.value.read())
            assert body["error"] == "DeadlineExceededError"

    def test_malformed_header_is_a_400(self):
        with serve_dispatch(
            lambda path, params: {"ok": True}, access_log=False
        ) as server:
            request = urllib.request.Request(
                server.base_url + "/thing",
                headers={DEADLINE_HEADER: "whenever"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400

    def test_server_default_budget_applies_without_header(self):
        seen: dict[str, object] = {}

        def dispatch(path, params):
            seen["deadline"] = current_deadline()
            return {"ok": True}

        limits = HttpLimits(request_budget=2.0)
        with serve_dispatch(
            dispatch, access_log=False, limits=limits
        ) as server:
            urllib.request.urlopen(
                server.base_url + "/thing", timeout=10
            ).read()
        deadline = seen["deadline"]
        assert deadline is not None
        assert deadline.budget == 2.0

    def test_header_can_only_tighten_the_server_default(self):
        seen: dict[str, object] = {}

        def dispatch(path, params):
            seen["deadline"] = current_deadline()
            return {"ok": True}

        limits = HttpLimits(request_budget=2.0)
        with serve_dispatch(
            dispatch, access_log=False, limits=limits
        ) as server:
            request = urllib.request.Request(
                server.base_url + "/thing",
                headers={DEADLINE_HEADER: "60"},
            )
            urllib.request.urlopen(request, timeout=10).read()
        assert seen["deadline"].budget == 2.0

    def test_no_budget_means_no_ambient_deadline(self):
        seen: dict[str, object] = {"deadline": "unset"}

        def dispatch(path, params):
            seen["deadline"] = current_deadline()
            return {"ok": True}

        with serve_dispatch(dispatch, access_log=False) as server:
            urllib.request.urlopen(
                server.base_url + "/thing", timeout=10
            ).read()
        assert seen["deadline"] is None

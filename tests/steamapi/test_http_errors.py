"""HTTP transport and server error paths.

Satellite coverage for the crash-safety PR: a connection that dies
*mid-response* must surface as a retryable typed error (never a raw
``TimeoutError``/``IncompleteRead`` that aborts the crawl), and the
server must answer malformed or unknown requests with JSON error
bodies, not handler-thread tracebacks.
"""

import concurrent.futures
import json
import socket
import threading
import urllib.request

import pytest

from repro.steamapi.errors import (
    ApiError,
    BadRequestError,
    MalformedResponseError,
    NotFoundError,
)
from repro.steamapi.http_client import HttpTransport
from repro.steamapi.http_server import serve
from repro.steamapi.service import DEFAULT_API_KEY, SteamApiService


class _RawSocketServer:
    """A one-connection-at-a-time server speaking scripted raw HTTP.

    ``behavior(conn)`` gets each accepted connection; whatever bytes it
    writes (or fails to write) are what the client sees.  This is how
    we produce wire-level failures urllib can't fake: short bodies,
    mid-read stalls, resets.
    """

    def __init__(self, behavior) -> None:
        self.behavior = behavior
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(4)
        self.base_url = "http://127.0.0.1:%d" % self.sock.getsockname()[1]
        self._stop = threading.Event()
        self.thread = threading.Thread(target=self._loop, daemon=True)
        self.thread.start()

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            try:
                conn.recv(65536)  # drain the request; content irrelevant
                self.behavior(conn)
            except OSError:
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def close(self) -> None:
        self._stop.set()
        self.sock.close()
        self.thread.join(timeout=5)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def _short_body(conn) -> None:
    """Advertise 1000 body bytes, send 10, hang up: IncompleteRead."""
    conn.sendall(
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: application/json\r\n"
        b"Content-Length: 1000\r\n"
        b"\r\n"
        b'{"partial":'
    )


def _stall_forever(conn) -> None:
    """Send headers then nothing: the body read must time out."""
    conn.sendall(
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: application/json\r\n"
        b"Content-Length: 1000\r\n"
        b"\r\n"
    )
    # Keep the connection open past the client timeout.
    import time

    time.sleep(3.0)


class TestMidResponseFailures:
    def test_truncated_body_raises_retryable_error(self):
        with _RawSocketServer(_short_body) as raw:
            transport = HttpTransport(raw.base_url, timeout=5.0)
            with pytest.raises(MalformedResponseError, match="mid-response"):
                transport.request("/anything", {})

    def test_timeout_mid_read_raises_retryable_error(self):
        with _RawSocketServer(_stall_forever) as raw:
            transport = HttpTransport(raw.base_url, timeout=0.3)
            with pytest.raises(MalformedResponseError, match="mid-response"):
                transport.request("/anything", {})

    def test_mid_response_error_is_retryable_by_policy(self):
        # The crawler's retry policy must classify the new error as
        # transient — that is the point of mapping it.
        from repro.crawler.retry import RetryPolicy

        calls = {"n": 0}
        with _RawSocketServer(_short_body) as raw:
            broken = HttpTransport(raw.base_url, timeout=5.0)

            def flaky(path, params):
                calls["n"] += 1
                if calls["n"] == 1:
                    return broken.request(path, params)
                return {"ok": True}

            policy = RetryPolicy(max_attempts=3, sleeper=lambda _s: None)
            assert policy.call(lambda: flaky("/x", {})) == {"ok": True}
        assert calls["n"] == 2


@pytest.fixture(scope="module")
def server(small_world):
    service = SteamApiService.from_world(small_world)
    with serve(service) as running:
        yield running


class TestServerErrorPaths:
    def test_malformed_query_returns_400_json(self, server):
        url = (
            f"{server.base_url}/ISteamUser/GetFriendList/v1"
            f"?key={DEFAULT_API_KEY}&steamid=not-a-number"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(url, timeout=5)
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read().decode())
        assert payload["error"] == "BadRequestError"
        assert "malformed request parameters" in payload["message"]

    def test_malformed_query_via_transport_is_typed(self, server):
        transport = HttpTransport(server.base_url)
        with pytest.raises(BadRequestError):
            transport.request(
                "/ISteamUser/GetFriendList/v1",
                {"key": DEFAULT_API_KEY, "steamid": "not-a-number"},
            )

    def test_missing_required_param_returns_400(self, server):
        transport = HttpTransport(server.base_url)
        with pytest.raises((BadRequestError, ApiError)) as excinfo:
            transport.request(
                "/ISteamUser/GetFriendList/v1", {"key": DEFAULT_API_KEY}
            )
        assert isinstance(excinfo.value, ApiError)
        assert excinfo.value.status in (400, 404)

    def test_unknown_endpoint_404_with_json_body(self, server):
        url = f"{server.base_url}/IDoNot/Exist/v9"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(url, timeout=5)
        assert excinfo.value.code == 404
        payload = json.loads(excinfo.value.read().decode())
        assert payload["error"] == "NotFoundError"
        transport = HttpTransport(server.base_url)
        with pytest.raises(NotFoundError):
            transport.request("/IDoNot/Exist/v9", {})

    def test_metrics_under_concurrent_load(self, server, small_world):
        # /metrics must stay serveable and parseable while worker
        # threads hammer the API, and the request counter must account
        # for every successful call we made.
        sids = small_world.dataset.accounts.steamids()[:8]
        path = "/ISteamUser/GetPlayerSummaries/v2"
        before = _counter_total(server, path)

        def fetch(sid):
            transport = HttpTransport(server.base_url)
            payload = transport.request(
                path, {"key": DEFAULT_API_KEY, "steamids": str(int(sid))}
            )
            return payload["response"]["players"][0]["steamid"]

        def scrape(_i):
            with urllib.request.urlopen(
                f"{server.base_url}/metrics", timeout=5
            ) as resp:
                body = resp.read().decode()
            assert "http_requests" in body
            return body

        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            fetched = list(pool.map(fetch, list(sids) * 4))
            scraped = list(pool.map(scrape, range(16)))
        assert len(fetched) == len(sids) * 4
        assert all(scraped)
        after = _counter_total(server, path)
        assert after - before == len(sids) * 4


def _counter_total(server, path: str) -> float:
    """The http_requests counter for one path's successful calls."""
    metric = server.obs.registry.get("http_requests")
    return metric.value(path=path, status=200)

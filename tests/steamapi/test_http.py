"""JSON-over-HTTP transport against a live localhost server."""

import numpy as np
import pytest

from repro.steamapi.errors import (
    NotFoundError,
    RateLimitedError,
    UnauthorizedError,
)
from repro.steamapi.http_client import HttpTransport
from repro.steamapi.http_server import serve
from repro.steamapi.service import DEFAULT_API_KEY, SteamApiService


@pytest.fixture(scope="module")
def server(small_world):
    service = SteamApiService.from_world(small_world)
    service.register_key("tiny-budget", rate=1e-6, burst=1.0)
    with serve(service) as running:
        yield running


@pytest.fixture(scope="module")
def transport(server):
    return HttpTransport(server.base_url)


class TestHttpRoundTrip:
    def test_summaries_roundtrip(self, transport, small_world):
        sid = int(small_world.dataset.accounts.steamids()[0])
        payload = transport.request(
            "/ISteamUser/GetPlayerSummaries/v2",
            {"key": DEFAULT_API_KEY, "steamids": str(sid)},
        )
        assert payload["response"]["players"][0]["steamid"] == str(sid)

    def test_identical_to_in_process(self, transport, small_world):
        service = SteamApiService.from_world(small_world)
        sid = int(small_world.dataset.accounts.steamids()[5])
        params = {"key": DEFAULT_API_KEY, "steamid": sid}
        via_http = transport.request(
            "/IPlayerService/GetOwnedGames/v1", dict(params)
        )
        direct = service.dispatch(
            "/IPlayerService/GetOwnedGames/v1", dict(params)
        )
        assert via_http == direct

    def test_404_maps_to_typed_error(self, transport):
        with pytest.raises(NotFoundError):
            transport.request("/unknown/endpoint", {})

    def test_401_maps_to_typed_error(self, transport):
        with pytest.raises(UnauthorizedError):
            transport.request(
                "/ISteamApps/GetAppList/v2", {"key": "WRONG"}
            )

    def test_429_carries_retry_after(self, transport, small_world):
        sid = int(small_world.dataset.accounts.steamids()[0])
        transport.request(
            "/ISteamUser/GetFriendList/v1",
            {"key": "tiny-budget", "steamid": sid},
        )
        with pytest.raises(RateLimitedError) as info:
            transport.request(
                "/ISteamUser/GetFriendList/v1",
                {"key": "tiny-budget", "steamid": sid},
            )
        assert info.value.retry_after > 0

    def test_concurrent_requests(self, server, small_world):
        """The threading server handles parallel clients."""
        import concurrent.futures

        sids = small_world.dataset.accounts.steamids()[:16]

        def fetch(sid):
            transport = HttpTransport(server.base_url)
            return transport.request(
                "/ISteamUser/GetFriendList/v1",
                {"key": DEFAULT_API_KEY, "steamid": int(sid)},
            )

        with concurrent.futures.ThreadPoolExecutor(8) as pool:
            results = list(pool.map(fetch, sids))
        assert len(results) == 16
        assert all("friendslist" in r for r in results)

    def test_connection_refused_is_api_error(self):
        from repro.steamapi.errors import ApiError

        transport = HttpTransport("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ApiError):
            transport.request("/ISteamApps/GetAppList/v2", {"key": "x"})


class TestHttpChaos:
    """Server-side fault injection over the genuine network path."""

    def test_truncated_body_surfaces_as_malformed(self, small_world):
        from repro.steamapi.errors import MalformedResponseError
        from repro.steamapi.faults import FaultPlan, FaultSpec

        service = SteamApiService.from_world(small_world)
        plan = FaultPlan(seed=4, default=FaultSpec(malformed=1.0))
        with serve(service, fault_plan=plan) as running:
            transport = HttpTransport(running.base_url)
            with pytest.raises(MalformedResponseError):
                transport.request(
                    "/ISteamApps/GetAppList/v2", {"key": DEFAULT_API_KEY}
                )
            assert running.faults.fault_counts["malformed"] == 1

    def test_detail_crawl_survives_http_chaos(self, small_world):
        """The retry stack makes a chaotic HTTP crawl land the same
        harvest as a clean in-process crawl."""
        import numpy as np

        from repro.crawler.details import crawl_details
        from repro.crawler.retry import RetryPolicy
        from repro.crawler.session import CrawlSession
        from repro.crawler.throttle import PolitePacer
        from repro.steamapi.faults import FaultPlan
        from repro.steamapi.transport import InProcessTransport

        def session(transport):
            return CrawlSession(
                transport=transport,
                pacer=PolitePacer(1e9, sleeper=lambda s: None),
                retry=RetryPolicy(
                    sleeper=lambda s: None, max_attempts=10, jitter=True
                ),
            )

        service = SteamApiService.from_world(small_world)
        steamids = small_world.dataset.accounts.steamids()[:60]
        clean = crawl_details(
            session(InProcessTransport(service)), steamids
        )

        plan = FaultPlan.uniform(0.15, seed=21)
        with serve(service, fault_plan=plan) as running:
            harvest = crawl_details(
                session(HttpTransport(running.base_url)), steamids
            )
            assert running.faults.total_injected > 0
        assert np.array_equal(harvest.edge_a, clean.edge_a)
        assert np.array_equal(harvest.lib_appid, clean.lib_appid)
        assert np.array_equal(harvest.lib_total_min, clean.lib_total_min)
        assert np.array_equal(harvest.member_group, clean.member_group)


class TestTracePropagation:
    """The crawler → Steam-API leg of cross-process tracing: the client
    stamps ``X-Repro-Trace`` on every request and the server echoes it
    into its own span tree (DESIGN.md §10)."""

    def _request_once(self, transport, world):
        sid = int(world.dataset.accounts.steamids()[0])
        return transport.request(
            "/ISteamUser/GetPlayerSummaries/v2",
            {"key": DEFAULT_API_KEY, "steamids": str(sid)},
        )

    def test_client_header_joins_server_span(self, small_world):
        from repro.obs import Obs, TraceContext

        obs = Obs(trace=TraceContext.new(seed=77))
        service = SteamApiService.from_world(small_world)
        with serve(service, obs=obs) as running:
            transport = HttpTransport(
                running.base_url, trace=obs.trace, tracer=obs.tracer
            )
            with obs.span("crawl") as crawl:
                self._request_once(transport, small_world)
        http_spans = [
            s
            for s in obs.tracer.snapshot()
            if s["name"].startswith("http:")
        ]
        assert len(http_spans) == 1
        span = http_spans[0]
        assert span["attrs"]["trace_id"] == obs.trace.trace_id
        assert span["attrs"]["track"] == "steamapi-server"
        assert span["attrs"]["status"] == 200
        # The server span's parent is the *client's* open span — the
        # id crossed the wire in the header, not shared memory.
        assert span["parent_span_id"] == crawl.span_id

    def test_server_without_context_still_records_trace_id(
        self, small_world
    ):
        from repro.obs import Obs, TraceContext

        server_obs = Obs()  # separate process in spirit: no context
        trace = TraceContext.new(seed=78)
        service = SteamApiService.from_world(small_world)
        with serve(service, obs=server_obs) as running:
            transport = HttpTransport(running.base_url, trace=trace)
            self._request_once(transport, small_world)
        http_spans = [
            s
            for s in server_obs.tracer.snapshot()
            if s["name"].startswith("http:")
        ]
        assert len(http_spans) == 1
        assert http_spans[0]["attrs"]["trace_id"] == trace.trace_id

    def test_untraced_request_sends_no_header_no_span(self, small_world):
        from repro.obs import Obs

        server_obs = Obs()
        service = SteamApiService.from_world(small_world)
        with serve(service, obs=server_obs) as running:
            transport = HttpTransport(running.base_url)
            self._request_once(transport, small_world)
        assert not [
            s
            for s in server_obs.tracer.snapshot()
            if s["name"].startswith("http:")
        ]

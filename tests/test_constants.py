"""Internal consistency of the paper-reported constants."""

import pytest

from repro import constants


class TestDerivedQuantities:
    def test_mean_friends(self):
        assert constants.MEAN_FRIENDS_ALL_ACCOUNTS == pytest.approx(
            3.613, abs=0.01
        )

    def test_table1_shares_sum_with_other(self):
        total = sum(constants.TABLE1_COUNTRY_SHARES.values())
        assert total + constants.TABLE1_OTHER_SHARE == pytest.approx(
            1.0, abs=0.001
        )

    def test_table2_counts_sum_to_250(self):
        assert sum(constants.TABLE2_GROUP_TYPES.values()) == 250

    def test_table3_rows_monotone(self):
        for name, values in constants.TABLE3.items():
            assert list(values) == sorted(values), name

    def test_days_since_launch(self):
        assert constants.days_since_launch(constants.STEAM_LAUNCH) == 0
        assert (
            constants.days_since_launch(constants.PROFILE_CRAWL_END) > 3000
        )

    def test_timeline_ordered(self):
        assert (
            constants.STEAM_LAUNCH
            < constants.FRIEND_TIMESTAMPS_START
            < constants.PROFILE_CRAWL_START
            < constants.PROFILE_CRAWL_END
            < constants.DETAIL_CRAWL_START
            < constants.DETAIL_CRAWL_END
            < constants.CATALOG_CRAWL_DATE
            < constants.SNAPSHOT2_START
            < constants.SNAPSHOT2_END
            < constants.WEEK_PANEL_START
            < constants.WEEK_PANEL_END
            < constants.ACHIEVEMENT_CRAWL_DATE
        )

    def test_homophily_stronger_than_cross_correlations(self):
        assert min(constants.HOMOPHILY_CORRELATIONS.values()) > max(
            constants.CROSS_CORRELATIONS.values()
        )

    def test_average_copy_price(self):
        avg = (
            constants.TOTAL_MARKET_VALUE_USD / constants.TOTAL_OWNED_GAMES
        )
        assert avg == pytest.approx(13.86, abs=0.01)

"""World evolution: delta soundness, determinism, and invariants."""

import numpy as np
import pytest

from repro.simworld.config import WorldConfig
from repro.simworld.evolution import EvolveConfig, evolve
from repro.simworld.world import SteamWorld


@pytest.fixture(scope="module")
def tiny_world() -> SteamWorld:
    return SteamWorld.generate(WorldConfig(n_users=2_000, seed=71))


class TestEvolve:
    def test_yields_requested_steps(self, tiny_world):
        steps = list(evolve(tiny_world, steps=3))
        assert [s.step for s in steps] == [1, 2, 3]

    def test_deterministic_for_seed(self, tiny_world):
        a = list(evolve(tiny_world, steps=2, seed=5))
        fresh = SteamWorld.generate(WorldConfig(n_users=2_000, seed=71))
        b = list(evolve(fresh, steps=2, seed=5))
        for sa, sb in zip(a, b):
            assert np.array_equal(
                sa.delta.changed_offsets, sb.delta.changed_offsets
            )
            assert np.array_equal(sa.delta.new_offsets, sb.delta.new_offsets)
            assert sa.dataset.fingerprint() == sb.dataset.fingerprint()

    def test_source_dataset_not_mutated(self, tiny_world):
        before = tiny_world.dataset.fingerprint()
        list(evolve(tiny_world, steps=1))
        assert tiny_world.dataset.fingerprint() == before

    def test_population_grows_by_account_growth(self, tiny_world):
        step = next(
            evolve(tiny_world, steps=1, config=EvolveConfig(account_growth=0.01))
        )
        assert step.delta.n_new == 20
        assert step.dataset.n_users == tiny_world.dataset.n_users + 20
        # New offsets sit above every prior offset, so prior users keep
        # their dense indices — the invariant the delta merge relies on.
        assert step.delta.new_offsets.min() > int(
            tiny_world.dataset.accounts.id_offset.max()
        )

    def test_changed_and_new_disjoint(self, tiny_world):
        for step in evolve(tiny_world, steps=2):
            assert not np.intersect1d(
                step.delta.changed_offsets, step.delta.new_offsets
            ).size

    def test_playtime_only_config_touches_only_playtime(self, tiny_world):
        cfg = EvolveConfig(
            account_growth=0.0,
            buy_rate=0.0,
            friend_form_rate=0.0,
            friend_drop_rate=0.0,
            play_rate=0.01,
        )
        step = next(evolve(tiny_world, steps=1, config=cfg))
        assert set(step.delta.touched_columns) == {
            "lib.total_min",
            "lib.twoweek_min",
        }
        assert step.delta.n_new == 0
        assert step.delta.n_changed > 0
        # Exactly the declared columns' fingerprints moved.
        prior_fps = tiny_world.dataset.column_fingerprints()
        new_fps = step.dataset.column_fingerprints()
        changed = {k for k in prior_fps if prior_fps[k] != new_fps[k]}
        assert changed == {"lib.total_min", "lib.twoweek_min"}

    def test_edge_churn_marks_both_endpoints(self, tiny_world):
        cfg = EvolveConfig(
            account_growth=0.0,
            buy_rate=0.0,
            play_rate=0.0,
            friend_form_rate=0.02,
            friend_drop_rate=0.01,
        )
        step = next(evolve(tiny_world, steps=1, seed=3, config=cfg))
        prior, new = tiny_world.dataset, step.dataset
        prior_edges = set(zip(prior.friends.u.tolist(), prior.friends.v.tolist()))
        new_edges = set(zip(new.friends.u.tolist(), new.friends.v.tolist()))
        changed_dense = set(
            np.searchsorted(
                prior.accounts.id_offset, step.delta.changed_offsets
            ).tolist()
        )
        moved = (prior_edges - new_edges) | (new_edges - prior_edges)
        assert moved, "config should churn at least one edge"
        for u, v in moved:
            assert u in changed_dense and v in changed_dense

    def test_friend_table_stays_canonical(self, tiny_world):
        step = next(evolve(tiny_world, steps=1, seed=9))
        fr = step.dataset.friends
        assert np.all(fr.u < fr.v)
        key = fr.u.astype(np.int64) * step.dataset.n_users + fr.v
        assert np.all(np.diff(key) > 0)

    def test_dtypes_preserved(self, tiny_world):
        prior = tiny_world.dataset
        step = next(evolve(tiny_world, steps=1))
        evolved = step.dataset
        for (key, before), (key2, after) in zip(
            prior.iter_columns(), evolved.iter_columns()
        ):
            assert key == key2
            assert before.dtype == after.dtype, key

"""Delta manifests: invariants, round-trips, and tag projection."""

import numpy as np
import pytest

from repro.delta.model import DatasetDelta, WorldDelta


class TestWorldDelta:
    def test_offsets_sorted_and_deduped(self):
        delta = WorldDelta(
            step=1,
            seed=7,
            changed_offsets=[5, 3, 5, 1],
            new_offsets=[9, 8],
        )
        assert delta.changed_offsets.tolist() == [1, 3, 5]
        assert delta.new_offsets.tolist() == [8, 9]
        assert delta.n_changed == 3
        assert delta.n_new == 2
        assert delta.all_offsets().tolist() == [1, 3, 5, 8, 9]

    def test_changed_and_new_must_be_disjoint(self):
        with pytest.raises(ValueError, match="disjoint"):
            WorldDelta(
                step=1, seed=7, changed_offsets=[1, 2], new_offsets=[2, 3]
            )

    def test_json_roundtrip(self, tmp_path):
        delta = WorldDelta(
            step=3,
            seed=11,
            changed_offsets=[4, 2],
            new_offsets=[10],
            touched_columns=("lib.total_min", "shape"),
        )
        path = delta.save(tmp_path / "delta.json")
        loaded = WorldDelta.load(path)
        assert loaded.step == 3
        assert loaded.seed == 11
        assert np.array_equal(loaded.changed_offsets, delta.changed_offsets)
        assert np.array_equal(loaded.new_offsets, delta.new_offsets)
        assert loaded.touched_columns == delta.touched_columns

    def test_load_rejects_wrong_kind(self, tmp_path):
        delta = DatasetDelta(prior_fingerprint="a", fingerprint="b")
        path = delta.save(tmp_path / "wrong.json")
        with pytest.raises(ValueError, match="world-delta"):
            WorldDelta.load(path)


class TestDatasetDelta:
    def test_json_roundtrip(self, tmp_path):
        delta = DatasetDelta(
            prior_fingerprint="aaa",
            fingerprint="bbb",
            changed_steamids=[100, 50],
            new_steamids=[200],
            changed_appids=[10, 20],
            changed_columns=("lib.total_min",),
        )
        loaded = DatasetDelta.load(delta.save(tmp_path / "d.json"))
        assert loaded.prior_fingerprint == "aaa"
        assert loaded.fingerprint == "bbb"
        assert loaded.changed_steamids.tolist() == [50, 100]
        assert loaded.new_steamids.tolist() == [200]
        assert loaded.changed_appids.tolist() == [10, 20]
        assert loaded.changed_columns == ("lib.total_min",)

    def test_stale_tags_playtime_only(self):
        delta = DatasetDelta(
            prior_fingerprint="a",
            fingerprint="b",
            changed_steamids=[100],
            changed_columns=("lib.total_min", "lib.twoweek_min"),
        )
        tags = delta.stale_tags()
        assert "user:100" in tags
        assert "attr:total_playtime_hours" in tags
        assert "attr:twoweek_playtime_hours" in tags
        # Playtime doesn't move the ownership/social attributes...
        assert "attr:friends" not in tags
        assert "attr:owned_games" not in tags
        assert "attr:group_memberships" not in tags
        assert "attr:market_value" not in tags
        # ...but per-app playtime aggregates are lib-backed.
        assert "app_stats" in tags

    def test_stale_tags_friend_only(self):
        delta = DatasetDelta(
            prior_fingerprint="a",
            fingerprint="b",
            changed_steamids=[100, 101],
            changed_columns=("fr.u", "fr.v", "fr.day"),
        )
        tags = delta.stale_tags()
        assert "attr:friends" in tags
        assert "app_stats" not in tags
        assert "attr:total_playtime_hours" not in tags

    def test_stale_tags_population_change_invalidates_attributes(self):
        delta = DatasetDelta(
            prior_fingerprint="a",
            fingerprint="b",
            new_steamids=[500],
            changed_columns=("shape", "acc.id_offset"),
        )
        tags = delta.stale_tags()
        # Every per-attribute distribution ranks against the population.
        for attr in (
            "friends",
            "owned_games",
            "group_memberships",
            "market_value",
            "total_playtime_hours",
            "twoweek_playtime_hours",
        ):
            assert f"attr:{attr}" in tags
        assert "app_stats" in tags
        assert "user:500" in tags

    def test_stale_tags_app_ids(self):
        delta = DatasetDelta(
            prior_fingerprint="a",
            fingerprint="b",
            changed_appids=[42, 77],
        )
        tags = delta.stale_tags()
        assert "app:42" in tags and "app:77" in tags

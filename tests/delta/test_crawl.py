"""End-to-end delta pipeline: evolve → delta-crawl → re-analyze.

The acceptance contract (DESIGN.md §12):

- refetching only a step's changed/new users through the simulated API
  assembles a dataset **byte-identical** (same fingerprint) to a full
  re-crawl of the evolved world, at O(delta) request cost;
- re-analyzing with a warm stage cache executes strictly fewer stages
  than the cold run and renders an identical report.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SteamStudy, SteamWorld, WorldConfig, constants
from repro.crawler.runner import run_full_crawl
from repro.delta.crawl import run_delta_crawl
from repro.simworld.evolution import EvolveConfig, evolve
from repro.steamapi.service import SteamApiService
from repro.steamapi.transport import InProcessTransport


def _transport(dataset) -> InProcessTransport:
    return InProcessTransport(SteamApiService(dataset))


@pytest.fixture(scope="module")
def crawl_chain():
    """World → full crawl → one evolve step, shared by the class."""
    world = SteamWorld.generate(WorldConfig(n_users=1_200, seed=7))
    prior = run_full_crawl(_transport(world.dataset)).dataset
    step = next(evolve(world, steps=1, seed=13))
    return world, prior, step


class TestDeltaCrawl:
    def test_byte_identical_to_full_crawl_at_delta_cost(self, crawl_chain):
        _, prior, step = crawl_chain
        full = run_full_crawl(_transport(step.dataset))
        dres = run_delta_crawl(_transport(step.dataset), prior, step.delta)

        # Same bytes...
        assert dres.dataset.fingerprint() == full.dataset.fingerprint()
        # ...for a fraction of the requests.  A full crawl pages every
        # profile; the delta crawl touches only changed/new users (plus
        # the bounded group-label scrape).
        assert dres.requests_made < full.requests_made / 4
        assert dres.n_refetched == len(step.delta.all_offsets())

    def test_delta_manifest_links_the_two_fingerprints(self, crawl_chain):
        _, prior, step = crawl_chain
        dres = run_delta_crawl(_transport(step.dataset), prior, step.delta)
        assert dres.delta.prior_fingerprint == prior.fingerprint()
        assert dres.delta.fingerprint == dres.dataset.fingerprint()
        assert set(dres.delta.changed_steamids.tolist()) == set(
            (step.delta.changed_offsets + constants.STEAMID_BASE).tolist()
        )


class TestIncrementalReanalysis:
    def test_delta_rerun_executes_strict_subset(self, tmp_path):
        """A playtime-only 1% delta re-analyzes by executing strictly
        fewer stages than the cold run — the engine's counters prove
        the O(delta) claim — and renders the same report a from-scratch
        run over the evolved dataset would."""
        world = SteamWorld.generate(WorldConfig(n_users=2_500, seed=11))
        cache = tmp_path / "stages"

        cold_study = SteamStudy(world=world, _dataset=world.dataset)
        cold_report = cold_study.run(cache=cache, table4_max_tail=2_000)
        cold_run = cold_study.last_engine_run
        assert cold_run.cached == ()

        cfg = EvolveConfig(
            account_growth=0.0,
            buy_rate=0.0,
            friend_form_rate=0.0,
            friend_drop_rate=0.0,
            play_rate=0.01,
        )
        step = next(evolve(world, steps=1, seed=3, config=cfg))
        warm_study = SteamStudy(world=world, _dataset=step.dataset)
        warm_report = warm_study.run(cache=cache, table4_max_tail=2_000)
        warm_run = warm_study.last_engine_run

        assert len(warm_run.executed) < cold_run.n_stages
        assert warm_run.cached != ()
        # Friend/country/group analyses never read playtime: cached.
        for name in (
            "fig1_evolution",
            "fig2_degrees",
            "table1_countries",
            "table2_groups",
        ):
            assert name in warm_run.cached, name
        # Playtime readers recompute.
        assert "fig6_playtime_cdf" in warm_run.executed

        # The warm run's answers are the from-scratch answers.
        fresh_study = SteamStudy(world=world, _dataset=step.dataset)
        fresh_report = fresh_study.run(table4_max_tail=2_000)
        assert warm_report.render() == fresh_report.render()
        assert warm_report.render_figures() == fresh_report.render_figures()
        # And a cold-vs-warm sanity check: playtime moved something.
        assert warm_report.render() != cold_report.render()

"""apply_user_delta: hand-built batches against a generated prior.

The regression of record (satellite of DESIGN.md §12): a delta batch
whose users introduce **no new apps** must preserve every column's
dtype and the per-user entry ordering — an early cut of the merge
promoted int32 playtimes to int64 and reordered library rows, which
silently broke byte-identity with full-crawl assembly.
"""

import numpy as np
import pytest

from repro.store.merge import UserDeltaBatch, apply_user_delta


def _batch_for_users(dataset, dense_users, playtime_bump=0):
    """Refetch ``dense_users`` exactly as they are (optionally bumping
    playtime), introducing no new apps, edges, or memberships beyond
    what the users already have."""
    offsets = dataset.accounts.id_offset[dense_users]
    acc = dataset.accounts
    countries = [
        acc.country_names[c] if c >= 0 else None
        for c in acc.country[dense_users]
    ]
    in_batch = np.zeros(dataset.n_users, dtype=bool)
    in_batch[dense_users] = True

    lib_user, lib_product, lib_total, lib_two = [], [], [], []
    for pos, dense in enumerate(dense_users):
        lo, hi = (
            dataset.library.owned.indptr[dense],
            dataset.library.owned.indptr[dense + 1],
        )
        for j in range(lo, hi):
            lib_user.append(pos)
            lib_product.append(int(dataset.library.owned.indices[j]))
            lib_total.append(
                int(dataset.library.total_min[j]) + playtime_bump
            )
            lib_two.append(int(dataset.library.twoweek_min[j]))

    fr = dataset.friends
    both = in_batch[fr.u] & in_batch[fr.v]
    edge_a = dataset.accounts.id_offset[fr.u[both]]
    edge_b = dataset.accounts.id_offset[fr.v[both]]

    members = dataset.groups.members
    mem_user, mem_group = [], []
    row_ids = members.row_ids()
    for pos, dense in enumerate(dense_users):
        mask = members.indices == dense
        for g in row_ids[mask]:
            mem_user.append(pos)
            mem_group.append(int(g))

    return UserDeltaBatch(
        offsets=offsets,
        created_day=acc.created_day[dense_users],
        countries=countries,
        city=acc.city[dense_users],
        edge_a_off=edge_a,
        edge_b_off=edge_b,
        edge_day=fr.day[both],
        lib_user=np.array(lib_user, dtype=np.int64),
        lib_product=np.array(lib_product, dtype=np.int64),
        lib_total_min=np.array(lib_total, dtype=np.int64),
        lib_twoweek_min=np.array(lib_two, dtype=np.int32),
        member_user=np.array(mem_user, dtype=np.int64),
        member_group=np.array(mem_group, dtype=np.int64),
    )


class TestApplyUserDelta:
    def test_identity_batch_is_a_noop(self, crawled_dataset):
        """Refetching two unchanged users reproduces the prior dataset
        byte for byte.  The prior must itself be crawler-assembled:
        the merge recounts country names in crawl frequency order, so
        only that canonical form round-trips exactly."""
        batch = _batch_for_users(crawled_dataset, np.array([10, 500]))
        merged = apply_user_delta(
            crawled_dataset, batch, snapshot2=crawled_dataset.snapshot2,
            meta=crawled_dataset.meta,
        )
        assert merged.fingerprint() == crawled_dataset.fingerprint()

    def test_no_new_apps_preserves_dtype_and_ordering(self, small_dataset):
        """The satellite regression: a 2-user playtime-only batch must
        keep every dtype and the library column ordering intact."""
        users = np.array([10, 500])
        batch = _batch_for_users(small_dataset, users, playtime_bump=30)
        merged = apply_user_delta(
            small_dataset, batch, snapshot2=small_dataset.snapshot2,
            meta=small_dataset.meta,
        )
        prior_cols = dict(small_dataset.iter_columns())
        merged_cols = dict(merged.iter_columns())
        assert list(prior_cols) == list(merged_cols)
        for key in prior_cols:
            assert merged_cols[key].dtype == prior_cols[key].dtype, key
        # Structure untouched: ownership identical, playtime moved only
        # in the two users' rows, per-row entry order preserved.
        assert np.array_equal(
            merged_cols["lib.indptr"], prior_cols["lib.indptr"]
        )
        assert np.array_equal(
            merged_cols["lib.indices"], prior_cols["lib.indices"]
        )
        lo, hi = (
            small_dataset.library.owned.indptr[10],
            small_dataset.library.owned.indptr[11],
        )
        assert np.array_equal(
            merged.library.total_min[lo:hi],
            small_dataset.library.total_min[lo:hi] + 30,
        )
        touched = np.zeros(len(prior_cols["lib.total_min"]), dtype=bool)
        for u in users:
            touched[
                small_dataset.library.owned.indptr[u] : small_dataset.library.owned.indptr[u + 1]
            ] = True
        assert np.array_equal(
            merged.library.total_min[~touched],
            small_dataset.library.total_min[~touched],
        )

    def test_changed_columns_are_exactly_playtime(self, crawled_dataset):
        batch = _batch_for_users(
            crawled_dataset, np.array([10, 500]), playtime_bump=30
        )
        merged = apply_user_delta(
            crawled_dataset, batch, snapshot2=crawled_dataset.snapshot2,
            meta=crawled_dataset.meta,
        )
        prior_fps = crawled_dataset.column_fingerprints()
        merged_fps = merged.column_fingerprints()
        changed = {k for k in prior_fps if prior_fps[k] != merged_fps[k]}
        assert changed == {"lib.total_min"}

    def test_new_user_appended_above_prior_offsets(self, small_dataset):
        new_offset = int(small_dataset.accounts.id_offset.max()) + 100
        batch = UserDeltaBatch(
            offsets=np.array([new_offset], dtype=np.int64),
            created_day=np.array([1000], dtype=np.int32),
            countries=["Germany"],
            city=np.array([7], dtype=np.int64),
            lib_user=np.array([0, 0], dtype=np.int64),
            lib_product=np.array([3, 1], dtype=np.int64),
            lib_total_min=np.array([120, 0], dtype=np.int64),
            lib_twoweek_min=np.array([60, 0], dtype=np.int32),
        )
        # Population grows, so the second-snapshot table (if any) no
        # longer aligns; a real delta crawl re-harvests it.
        merged = apply_user_delta(
            small_dataset, batch, meta=small_dataset.meta
        )
        assert merged.n_users == small_dataset.n_users + 1
        # Prior users keep their dense indices and all their rows.
        assert np.array_equal(
            merged.accounts.id_offset[:-1], small_dataset.accounts.id_offset
        )
        assert np.array_equal(merged.friends.u, small_dataset.friends.u)
        assert np.array_equal(merged.friends.v, small_dataset.friends.v)
        # The new user's library is in response order.
        lo, hi = merged.library.owned.indptr[-2], merged.library.owned.indptr[-1]
        assert merged.library.owned.indices[lo:hi].tolist() == [3, 1]
        assert merged.library.total_min[lo:hi].tolist() == [120, 0]
        # Dtypes still match the prior tables (no new apps were added).
        prior_cols = dict(small_dataset.iter_columns())
        for key, after in merged.iter_columns():
            assert after.dtype == prior_cols[key].dtype, key

    def test_rejects_unsorted_offsets(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            UserDeltaBatch(
                offsets=np.array([5, 2], dtype=np.int64),
                created_day=np.array([1, 1], dtype=np.int32),
                countries=[None, None],
                city=np.array([-1, -1], dtype=np.int64),
            )

"""Integration calibration: the generated world vs the paper's numbers.

These are the tolerance-band assertions behind every figure/table; the
benchmarks print the same comparisons with full detail.
"""

import numpy as np
import pytest
from scipy.stats import spearmanr

from repro import constants


@pytest.fixture(scope="module")
def stats(dataset):
    return {
        "friends": dataset.friend_counts().astype(float),
        "owned": dataset.owned_counts().astype(float),
        "played": dataset.played_counts().astype(float),
        "total": dataset.total_playtime_hours(),
        "twoweek": dataset.twoweek_playtime_hours(),
        "value": dataset.market_value_dollars(),
        "groups": dataset.membership_counts().astype(float),
    }


def _pct(values, p):
    positive = values[values > 0]
    return float(np.percentile(positive, p))


class TestTable3Anchors:
    @pytest.mark.parametrize(
        "attr,key",
        [
            ("friends", "friends"),
            ("owned", "owned_games"),
            ("groups", "group_memberships"),
            ("value", "market_value"),
            ("total", "total_playtime_hours"),
        ],
    )
    def test_median_anchor(self, stats, attr, key):
        paper = constants.TABLE3[key][0]
        assert _pct(stats[attr], 50) == pytest.approx(paper, rel=0.35, abs=1.1)

    @pytest.mark.parametrize(
        "attr,key,rel",
        [
            ("friends", "friends", 0.2),
            ("owned", "owned_games", 0.2),
            ("groups", "group_memberships", 0.35),
            ("value", "market_value", 0.35),
            ("total", "total_playtime_hours", 0.15),
        ],
    )
    def test_p90_anchor(self, stats, attr, key, rel):
        paper = constants.TABLE3[key][2]
        assert _pct(stats[attr], 90) == pytest.approx(paper, rel=rel)

    def test_twoweek_anchors(self, stats, dataset):
        owners = dataset.owned_counts() > 0
        twoweek = stats["twoweek"][owners]
        assert np.percentile(twoweek, 80) == 0.0
        assert np.percentile(twoweek, 90) == pytest.approx(8.7, rel=0.25)


class TestFigureCallouts:
    def test_fig4_p80_owned(self, stats):
        assert _pct(stats["owned"], 80) == pytest.approx(10, abs=1.5)

    def test_fig4_owners_under_20_games(self, stats):
        owned = stats["owned"]
        share = np.mean(owned[owned > 0] < 20)
        assert share == pytest.approx(0.8978, abs=0.03)

    def test_fig7_p80_nonzero_twoweek(self, stats):
        twoweek = stats["twoweek"]
        nz = twoweek[twoweek > 0]
        assert np.percentile(nz, 80) == pytest.approx(32.05, rel=0.15)

    def test_fig8_p80_value(self, stats):
        assert _pct(stats["value"], 80) == pytest.approx(150.88, rel=0.35)

    def test_pareto_shares(self, stats, dataset):
        owners = dataset.owned_counts() > 0
        total = stats["total"][owners]
        top20 = np.sort(total)[-int(0.2 * len(total)):].sum() / total.sum()
        assert top20 == pytest.approx(0.824, abs=0.08)

    def test_zero_twoweek_share(self, stats, dataset):
        owners = dataset.owned_counts() > 0
        assert np.mean(stats["twoweek"][owners] == 0) == pytest.approx(
            0.82, abs=0.03
        )

    def test_idler_share(self, stats, dataset):
        near_cap = np.mean(stats["twoweek"] >= 0.8 * 336.0)
        assert near_cap < 5 * constants.IDLER_SHARE + 2e-4


class TestSection7Correlations:
    def test_homophily_ordering(self, dataset):
        from repro.core.homophily import homophily

        result = homophily(dataset)
        rhos = result.correlations.rhos
        value = rhos["market_value vs friends' avg"]
        owned = rhos["owned_games vs friends' avg"]
        friends = rhos["friends vs friends' avg"]
        total = rhos["total_playtime vs friends' avg"]
        # All four are clearly positive (homophily exists)...
        for rho in (value, owned, friends, total):
            assert rho > 0.3
        # ... market value is the strongest, as in the paper.
        assert value == max(value, owned, friends, total)
        assert value == pytest.approx(0.77, abs=0.12)

    def test_cross_correlations_weak(self, dataset):
        from repro.core.homophily import cross_correlations

        result = cross_correlations(dataset)
        for name, rho in result.rhos.items():
            paper = result.paper[name]
            assert rho == pytest.approx(paper, abs=0.12), name

    def test_owned_friends_positive(self, stats):
        mask = (stats["owned"] > 0) & (stats["friends"] > 0)
        rho = spearmanr(stats["owned"][mask], stats["friends"][mask]).statistic
        assert 0.15 < rho < 0.5


class TestGenreAndMultiplayer:
    def test_action_playtime_share(self, dataset):
        from repro.core.expenditure import genre_expenditure

        exp = genre_expenditure(dataset)
        assert exp.playtime_share("Action") == pytest.approx(0.4924, abs=0.13)

    def test_action_value_share(self, dataset):
        from repro.core.expenditure import genre_expenditure

        exp = genre_expenditure(dataset)
        assert exp.value_share("Action") == pytest.approx(0.5188, abs=0.12)

    def test_multiplayer_shares(self, dataset):
        from repro.core.multiplayer import multiplayer_share

        mp = multiplayer_share(dataset)
        assert mp.catalog_share == pytest.approx(0.487, abs=0.04)
        assert mp.total_playtime_share == pytest.approx(0.577, abs=0.12)
        assert mp.twoweek_playtime_share == pytest.approx(0.677, abs=0.12)
        # Two-week skews more multiplayer than lifetime, as in Figure 10.
        assert mp.twoweek_playtime_share > mp.total_playtime_share

    def test_genre_unplayed_rates(self, dataset):
        from repro.core.ownership import genre_ownership

        genre = genre_ownership(dataset)
        for name, target in constants.GENRE_UNPLAYED_RATES.items():
            assert genre.unplayed_rate(name) == pytest.approx(
                target, abs=0.06
            ), name


class TestLocality:
    def test_international_share(self, dataset):
        from repro.core.social import locality

        result = locality(dataset)
        assert result.international_share == pytest.approx(0.3034, abs=0.095)

    def test_cross_city_share(self, dataset):
        from repro.core.social import locality

        result = locality(dataset)
        assert result.cross_city_share == pytest.approx(0.7984, abs=0.07)

"""Friendship graph generation (Section 4.1)."""

import numpy as np
import pytest

from repro import constants
from repro.simworld.config import SocialConfig
from repro.simworld.friends import degree_curve, solve_friended_fraction


class TestDegreeCurve:
    def test_anchors(self):
        curve = degree_curve(SocialConfig())
        assert curve.percentile(50) == 4
        assert curve.percentile(80) == 15
        assert curve.percentile(99) == 122

    def test_friended_fraction_plausible(self):
        frac = solve_friended_fraction(SocialConfig())
        assert 0.15 < frac < 0.5


class TestGraphStructure:
    def test_edges_canonical(self, small_world):
        graph = small_world.friend_graph
        assert np.all(graph.u < graph.v)

    def test_no_duplicate_edges(self, small_world):
        graph = small_world.friend_graph
        keys = graph.u.astype(np.int64) * small_world.config.n_users + graph.v
        assert len(np.unique(keys)) == len(keys)

    def test_caps_respected(self, world):
        graph = world.friend_graph
        degrees = np.bincount(graph.u, minlength=world.config.n_users)
        degrees += np.bincount(graph.v, minlength=world.config.n_users)
        assert np.all(degrees <= graph.caps)

    def test_only_friended_users_have_edges(self, small_world):
        graph = small_world.friend_graph
        endpoints = np.unique(np.concatenate([graph.u, graph.v]))
        assert np.all(graph.friended_mask[endpoints])

    def test_days_after_both_accounts_exist(self, small_world):
        graph = small_world.friend_graph
        created = small_world.dataset.accounts.created_day
        born = np.maximum(created[graph.u], created[graph.v])
        assert np.all(graph.day >= born)

    def test_days_before_snapshot(self, small_world):
        graph = small_world.friend_graph
        end = constants.days_since_launch(constants.PROFILE_CRAWL_END)
        assert graph.day.max() <= end


class TestCalibration:
    def test_mean_degree_near_paper(self, world):
        degrees = world.dataset.friend_counts()
        assert degrees.mean() == pytest.approx(3.61, rel=0.18)

    def test_median_degree(self, world):
        degrees = world.dataset.friend_counts()
        positive = degrees[degrees > 0]
        assert 3 <= np.median(positive) <= 6

    def test_degree_dip_above_250(self, world):
        """Counts above the default cap are depressed (Figure 2)."""
        degrees = world.dataset.friend_counts()
        just_below = np.sum((degrees >= 230) & (degrees <= 250))
        just_above = np.sum((degrees > 250) & (degrees <= 270))
        assert just_above <= just_below

    def test_homophily_on_match_score(self, world):
        """Friends have similar match scores by construction."""
        graph = world.friend_graph
        score = graph.match_score
        rho = np.corrcoef(score[graph.u], score[graph.v])[0, 1]
        assert rho > 0.5

    def test_locality_shares(self, world):
        ds = world.dataset
        fr = ds.friends
        cu, cv = ds.accounts.country[fr.u], ds.accounts.country[fr.v]
        both = (cu >= 0) & (cv >= 0)
        intl = np.mean(cu[both] != cv[both])
        assert intl == pytest.approx(0.3034, abs=0.095)

"""Account creation process and ID assignment."""

import numpy as np
import pytest

from repro import constants
from repro.simworld.accounts import build_accounts, creation_days
from repro.simworld.config import SocialConfig


class TestCreationDays:
    def test_sorted_ascending(self, rng):
        days = creation_days(rng, 10_000, 0.42, 3_000)
        assert np.all(np.diff(days) >= 0)

    def test_within_range(self, rng):
        days = creation_days(rng, 10_000, 0.42, 3_000)
        assert days.min() >= 0
        assert days.max() < 3_000

    def test_exponential_growth_shape(self, rng):
        """More than half of accounts are created in the last third."""
        days = creation_days(rng, 50_000, 0.42, 3_470)
        late = np.mean(days > 2 * 3_470 / 3)
        assert late > 0.5

    def test_zero_growth_approaches_uniform(self, rng):
        days = creation_days(rng, 50_000, 1e-9, 1_000)
        assert np.mean(days) == pytest.approx(500, rel=0.05)

    def test_rejects_bad_end_day(self, rng):
        with pytest.raises(ValueError):
            creation_days(rng, 10, 0.4, 0)


class TestBuildAccounts:
    def test_ids_follow_creation_order(self, rng):
        accounts = build_accounts(rng, 5_000, SocialConfig())
        # Sequential assignment: both arrays ascend together.
        assert np.all(np.diff(accounts.created_day) >= 0)
        assert np.all(np.diff(accounts.id_offset) > 0)

    def test_creation_before_profile_crawl_end(self, rng):
        accounts = build_accounts(rng, 5_000, SocialConfig())
        end = constants.days_since_launch(constants.PROFILE_CRAWL_END)
        assert accounts.created_day.max() < end

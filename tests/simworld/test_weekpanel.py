"""Week-long daily playtime panel (Figure 12)."""

import numpy as np
import pytest

from repro.simworld.config import PanelConfig
from repro.simworld.weekpanel import stratified_sample


class TestStratifiedSample:
    def test_rate(self, rng):
        key = rng.random(100_000)
        sample = stratified_sample(rng, key, 0.005)
        assert len(sample) == pytest.approx(500, abs=5)

    def test_sorted_distinct(self, rng):
        key = rng.random(10_000)
        sample = stratified_sample(rng, key, 0.01)
        assert np.all(np.diff(sample) > 0)

    def test_covers_ordering_uniformly(self, rng):
        """The sample spans the full lifetime-playtime ordering."""
        key = np.arange(100_000).astype(float)
        sample = stratified_sample(rng, key, 0.005)
        # Sampled users' ranks should be near-uniform over [0, n).
        ranks = np.sort(key[sample])
        gaps = np.diff(ranks)
        assert gaps.max() < 3.0 / 0.005

    def test_rejects_bad_rate(self, rng):
        with pytest.raises(ValueError):
            stratified_sample(rng, np.arange(10.0), 0.0)


class TestPanel:
    def test_shape(self, world):
        panel = world.week_panel()
        assert panel.hours.shape == (len(panel.users), 7)
        assert panel.n_days == 7

    def test_sample_rate(self, world):
        panel = world.week_panel()
        expected = world.config.n_users * PanelConfig().sample_rate
        assert len(panel.users) == pytest.approx(expected, rel=0.05)

    def test_hours_bounded(self, world):
        panel = world.week_panel()
        assert panel.hours.min() >= 0.0
        assert panel.hours.max() <= 24.0

    def test_active_subset(self, world):
        panel = world.week_panel()
        active = panel.active()
        assert len(active.users) <= len(panel.users)
        assert np.all(active.hours.sum(axis=1) > 0)

    def test_recent_players_play_more(self, world):
        panel = world.week_panel()
        twoweek = world.dataset.library.user_twoweek_min()[panel.users]
        week_hours = panel.hours.sum(axis=1)
        active_recent = twoweek > 0
        if active_recent.any() and (~active_recent).any():
            assert (
                week_hours[active_recent].mean()
                > week_hours[~active_recent].mean()
            )

    def test_deterministic(self, world):
        a = world.week_panel()
        b = world.week_panel()
        assert np.array_equal(a.users, b.users)
        assert np.array_equal(a.hours, b.hours)

    def test_weekend_days_heavier(self, world):
        """The paper's window ran Saturday-Friday; weekend play is
        heavier than weekday play."""
        from repro.core.weekpanel import analyze_week_panel

        stats = analyze_week_panel(world.week_panel())
        assert len(stats.daily_means) == 7
        assert stats.weekend_heavier()

    def test_saturday_heavier_than_midweek(self, world):
        # Raw daily means are dominated by the idler mixture (20-24h on
        # every day) and a handful of tail users, which makes the
        # Saturday-vs-midweek gap a coin flip at panel sample sizes.
        # Clipping at 12h/day isolates the weekend boost of typical
        # players, which is the behavior under test.
        hours = np.minimum(world.week_panel().active().hours, 12.0)
        saturday = hours[:, 0].mean()
        midweek = hours[:, 2:5].mean()
        assert saturday > midweek

"""Synthetic product names."""

from repro.simworld.names import game_name


class TestGameName:
    def test_deterministic(self):
        assert game_name(440) == game_name(440)

    def test_varies_across_ids(self):
        names = {game_name(appid) for appid in range(10, 5000, 10)}
        assert len(names) > 50

    def test_human_readable(self):
        name = game_name(570)
        assert name[0].isupper()
        assert " " in name

    def test_served_by_api(self, small_world):
        from repro.steamapi.service import DEFAULT_API_KEY, SteamApiService

        service = SteamApiService.from_world(small_world)
        apps = service.get_app_list(DEFAULT_API_KEY)["applist"]["apps"]
        assert apps[0]["name"] == game_name(apps[0]["appid"])
        appid = int(small_world.dataset.catalog.appid[0])
        details = service.appdetails(DEFAULT_API_KEY, appid)
        assert details[str(appid)]["data"]["name"] == game_name(appid)

"""Anchored quantile curves: exactness, monotonicity, tails."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simworld.marginals import (
    AnchoredCurve,
    TailSpec,
    lognormal_sigma_from_max,
    pareto_alpha_from_max,
)

ANCHORS = ((0.5, 4.0), (0.8, 15.0), (0.9, 29.0), (0.95, 50.0), (0.99, 122.0))


@pytest.fixture(params=["pareto", "lognormal"])
def curve(request):
    return AnchoredCurve(
        anchors=ANCHORS, x_min=1.0, tail=TailSpec("pareto", 2.0),
        interp=request.param,
    )


class TestAnchorExactness:
    def test_ppf_hits_every_anchor(self, curve):
        for q, x in ANCHORS:
            assert curve.ppf(q) == pytest.approx(x, rel=1e-9)

    def test_percentile_helper(self, curve):
        assert curve.percentile(80) == pytest.approx(15.0)

    def test_sample_quantiles_near_anchors(self, curve, rng):
        sample = curve.sample(rng, 200_000)
        for q, x in ANCHORS[:-1]:
            assert np.percentile(sample, q * 100) == pytest.approx(x, rel=0.05)


class TestShape:
    @given(st.floats(min_value=0.0, max_value=0.999))
    @settings(max_examples=60)
    def test_monotone(self, u):
        curve = AnchoredCurve(anchors=ANCHORS, tail=TailSpec("pareto", 2.0))
        eps = 5e-4
        assert curve.ppf(min(u + eps, 0.9995)) >= curve.ppf(u) - 1e-12

    def test_support_floor(self, curve):
        assert curve.ppf(0.0) == pytest.approx(1.0)

    def test_cdf_inverts_ppf(self, curve):
        u = np.linspace(0.01, 0.995, 57)
        x = curve.ppf(u)
        back = curve.cdf(x)
        assert np.allclose(back, u, atol=1e-6)

    def test_mean_between_median_and_p99(self, curve):
        mean = curve.mean(grid=50_001)
        assert 4.0 < mean < 122.0

    def test_rejects_u_out_of_range(self, curve):
        with pytest.raises(ValueError):
            curve.ppf(1.0)
        with pytest.raises(ValueError):
            curve.ppf(-0.1)


class TestTails:
    def test_pareto_tail_exponent(self):
        curve = AnchoredCurve(anchors=ANCHORS, tail=TailSpec("pareto", 2.0))
        # Quantile doubling: 1-q shrinking 4x doubles x under alpha=2.
        x1 = curve.ppf(1 - 4e-3)
        x2 = curve.ppf(1 - 1e-3)
        assert x2 / x1 == pytest.approx(4.0 ** 0.5, rel=1e-6)

    def test_lognormal_tail_grows_slower_than_heavy_pareto(self):
        pareto = AnchoredCurve(anchors=ANCHORS, tail=TailSpec("pareto", 1.2))
        lognorm = AnchoredCurve(
            anchors=ANCHORS, tail=TailSpec("lognormal", 0.9)
        )
        assert pareto.ppf(1 - 1e-6) > lognorm.ppf(1 - 1e-6)

    def test_cap_truncates(self):
        curve = AnchoredCurve(
            anchors=ANCHORS, tail=TailSpec("pareto", 1.5, cap=200.0)
        )
        assert curve.ppf(1 - 1e-9) == 200.0

    def test_discrete_rounds_up_to_integers(self, rng):
        curve = AnchoredCurve(
            anchors=ANCHORS, tail=TailSpec("pareto", 2.0), discrete=True
        )
        sample = curve.sample(rng, 10_000)
        assert np.all(sample == np.round(sample))
        assert sample.min() >= 1.0

    def test_cdf_above_cap_is_one(self):
        curve = AnchoredCurve(
            anchors=ANCHORS, tail=TailSpec("pareto", 1.5, cap=200.0)
        )
        assert curve.cdf(250.0) == 1.0


class TestTailCalibration:
    def test_pareto_alpha_from_max_solves(self):
        alpha = pareto_alpha_from_max(122.0, 0.99, 2000.0, 1e7)
        # Quantile at 1/1e7 should equal the stated max.
        curve = AnchoredCurve(anchors=ANCHORS, tail=TailSpec("pareto", alpha))
        assert curve.ppf(1 - 1e-7) == pytest.approx(2000.0, rel=0.01)

    def test_lognormal_sigma_from_max_solves(self):
        sigma = lognormal_sigma_from_max(122.0, 0.99, 2000.0, 1e7)
        curve = AnchoredCurve(
            anchors=ANCHORS, tail=TailSpec("lognormal", sigma)
        )
        assert curve.ppf(1 - 1e-7) == pytest.approx(2000.0, rel=0.01)

    def test_rejects_max_below_anchor(self):
        with pytest.raises(ValueError):
            pareto_alpha_from_max(122.0, 0.99, 100.0, 1e7)
        with pytest.raises(ValueError):
            lognormal_sigma_from_max(122.0, 0.99, 100.0, 1e7)


class TestValidation:
    def test_rejects_unsorted_anchors(self):
        with pytest.raises(ValueError):
            AnchoredCurve(anchors=((0.8, 10.0), (0.5, 4.0)))

    def test_rejects_non_increasing_values(self):
        with pytest.raises(ValueError):
            AnchoredCurve(anchors=((0.5, 10.0), (0.8, 10.0)))

    def test_rejects_bad_quantiles(self):
        with pytest.raises(ValueError):
            AnchoredCurve(anchors=((0.0, 1.0), (0.5, 2.0)))

    def test_rejects_x_min_above_first_anchor(self):
        with pytest.raises(ValueError):
            AnchoredCurve(anchors=ANCHORS, x_min=10.0)

    def test_rejects_empty_anchors(self):
        with pytest.raises(ValueError):
            AnchoredCurve(anchors=())

    def test_rejects_unknown_interp(self):
        with pytest.raises(ValueError):
            AnchoredCurve(anchors=ANCHORS, interp="spline")

    def test_rejects_bad_tail(self):
        with pytest.raises(ValueError):
            TailSpec("weibull", 1.0)
        with pytest.raises(ValueError):
            TailSpec("pareto", -1.0)
        with pytest.raises(ValueError):
            TailSpec("pareto", 1.0, cap=0.0)


@given(
    alpha=st.floats(min_value=1.1, max_value=5.0),
    u=st.floats(min_value=0.001, max_value=0.998),
)
@settings(max_examples=60)
def test_cdf_ppf_roundtrip_property(alpha, u):
    curve = AnchoredCurve(anchors=ANCHORS, tail=TailSpec("pareto", alpha))
    assert curve.cdf(curve.ppf(u)) == pytest.approx(u, abs=1e-6)

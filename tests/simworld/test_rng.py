"""Deterministic substreams."""

import numpy as np

from repro.simworld.rng import spawn_many, substream


class TestSubstream:
    def test_same_label_same_stream(self):
        a = substream(42, "friends").random(10)
        b = substream(42, "friends").random(10)
        assert np.array_equal(a, b)

    def test_different_labels_differ(self):
        a = substream(42, "friends").random(10)
        b = substream(42, "groups").random(10)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = substream(1, "friends").random(10)
        b = substream(2, "friends").random(10)
        assert not np.array_equal(a, b)

    def test_unicode_labels(self):
        assert substream(1, "лейбл").random(1) is not None


class TestSpawnMany:
    def test_children_are_independent_and_reproducible(self):
        first = [g.random(4) for g in spawn_many(7, "workers", 3)]
        second = [g.random(4) for g in spawn_many(7, "workers", 3)]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)
        assert not np.array_equal(first[0], first[1])

    def test_count(self):
        assert len(spawn_many(7, "x", 5)) == 5

"""Product catalog generation (Sections 3.1 and 5)."""

import numpy as np
import pytest

from repro.simworld.catalog import build_catalog
from repro.simworld.config import CatalogConfig


@pytest.fixture(scope="module")
def catalog():
    return build_catalog(np.random.default_rng(4), CatalogConfig())


class TestCatalogStructure:
    def test_product_count(self, catalog):
        assert catalog.n_products == 6_156

    def test_appids_sorted_distinct(self, catalog):
        assert np.all(np.diff(catalog.table.appid) > 0)

    def test_game_share(self, catalog):
        assert np.mean(catalog.table.is_game) == pytest.approx(0.78, abs=0.02)

    def test_popularity_normalized_over_games(self, catalog):
        assert catalog.popularity.sum() == pytest.approx(1.0)
        assert np.all(catalog.popularity[~catalog.table.is_game] == 0.0)

    def test_popularity_heavy_tailed(self, catalog):
        top10 = np.sort(catalog.popularity)[-10:].sum()
        assert top10 > 0.05


class TestGenres:
    def test_every_product_has_primary_genre_in_mask(self, catalog):
        bit = np.uint64(1) << catalog.table.primary_genre.astype(np.uint64)
        assert np.all((catalog.table.genre_mask & bit) != 0)

    def test_action_any_label_share_near_paper(self, catalog):
        games = catalog.table.is_game
        share = np.mean(catalog.table.has_genre("Action")[games])
        assert share == pytest.approx(0.381, abs=0.035)

    def test_action_most_common_primary(self, catalog):
        counts = np.bincount(catalog.table.primary_genre)
        assert np.argmax(counts) == catalog.table.genre_names.index("Action")

    def test_f2p_titles_are_free_and_multiplayer(self, catalog):
        f2p_idx = catalog.table.genre_names.index("Free to Play")
        f2p = catalog.table.primary_genre == f2p_idx
        assert np.all(catalog.table.price_cents[f2p] == 0)
        assert np.all(catalog.table.multiplayer[f2p])


class TestPricesAndQuality:
    def test_multiplayer_share_near_paper(self, catalog):
        games = catalog.table.is_game
        assert np.mean(catalog.table.multiplayer[games]) == pytest.approx(
            0.487, abs=0.03
        )

    def test_prices_are_valid_tiers(self, catalog):
        tiers = {int(round(p * 100)) for p in CatalogConfig().price_points}
        assert set(np.unique(catalog.table.price_cents)).issubset(tiers)

    def test_metacritic_range(self, catalog):
        assert catalog.table.metacritic.min() >= 20
        assert catalog.table.metacritic.max() <= 97

    def test_quality_correlates_with_metacritic(self, catalog):
        rho = np.corrcoef(
            catalog.quality, catalog.table.metacritic.astype(float)
        )[0, 1]
        assert rho > 0.2

    def test_quality_correlates_with_popularity(self, catalog):
        games = catalog.table.game_ids()
        rho = np.corrcoef(
            catalog.quality[games], np.log(catalog.popularity[games])
        )[0, 1]
        assert rho > 0.5

    def test_release_days_in_range(self, catalog):
        assert catalog.table.release_day.min() >= 0

    def test_deterministic(self):
        a = build_catalog(np.random.default_rng(4), CatalogConfig())
        b = build_catalog(np.random.default_rng(4), CatalogConfig())
        assert np.array_equal(a.table.price_cents, b.table.price_cents)
        assert np.array_equal(a.popularity, b.popularity)

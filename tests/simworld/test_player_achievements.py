"""Per-player achievement unlocks (Section 9 future work)."""

import numpy as np
import pytest


@pytest.fixture(scope="module")
def player_ach(world):
    return world.player_achievements()


class TestPlayerAchievements:
    def test_alignment(self, player_ach, world):
        assert len(player_ach.unlocked) == world.dataset.library.owned.nnz
        assert len(player_ach.hunter_mask) == world.config.n_users

    def test_unlocks_bounded_by_offered(self, player_ach, world):
        offered = world.dataset.achievements.count[
            world.dataset.library.owned.indices
        ]
        assert np.all(player_ach.unlocked <= offered)
        assert player_ach.unlocked.min() >= 0

    def test_unplayed_entries_unlock_nothing(self, player_ach, world):
        unplayed = world.dataset.library.total_min == 0
        assert np.all(player_ach.unlocked[unplayed] == 0)

    def test_aggregate_matches_global_rates(self, player_ach, world):
        """Owner-average completion per game tracks the 2016 API's
        global percentages (the consistency constraint)."""
        ds = world.dataset
        entry_game = ds.library.owned.indices
        rates = player_ach.completion_rate(ds.achievements, entry_game)
        valid = np.isfinite(rates)
        per_game_sum = np.bincount(
            entry_game[valid], weights=rates[valid], minlength=ds.n_products
        )
        per_game_n = np.bincount(entry_game[valid], minlength=ds.n_products)
        global_rate = ds.achievements.mean_completion()
        popular = np.flatnonzero(per_game_n >= 200)
        if len(popular) == 0:
            pytest.skip("no games with enough owners at this scale")
        measured = per_game_sum[popular] / per_game_n[popular]
        target = np.nan_to_num(global_rate[popular])
        assert np.mean(np.abs(measured - target)) < 0.05

    def test_playtime_increases_completion(self, player_ach, world):
        ds = world.dataset
        entry_game = ds.library.owned.indices
        rates = player_ach.completion_rate(ds.achievements, entry_game)
        hours = ds.library.total_min / 60.0
        valid = np.isfinite(rates) & (hours > 0)
        heavy = valid & (hours > 50)
        light = valid & (hours < 2)
        assert rates[heavy].mean() > rates[light].mean()

    def test_hunters_complete_nearly_everything(self, player_ach, world):
        ds = world.dataset
        entry_user = ds.library.owned.row_ids()
        entry_game = ds.library.owned.indices
        rates = player_ach.completion_rate(ds.achievements, entry_game)
        valid = np.isfinite(rates) & (ds.library.total_min > 0)
        hunter_entries = valid & player_ach.hunter_mask[entry_user]
        if not hunter_entries.any():
            pytest.skip("no hunters at this scale")
        assert rates[hunter_entries].mean() > 0.6

    def test_hunter_share(self, player_ach):
        assert player_ach.hunter_mask.mean() == pytest.approx(0.02, abs=0.005)

    def test_deterministic(self, world):
        a = world.player_achievements()
        b = world.player_achievements()
        assert np.array_equal(a.unlocked, b.unlocked)


class TestHunterReport:
    @pytest.fixture(scope="class")
    def report(self, world, player_ach):
        from repro.core.hunters import hunter_report

        return hunter_report(world.dataset, player_ach)

    def test_detects_hunters(self, report):
        assert report.detected_hunters > 0
        assert report.precision > 0.5
        assert report.recall > 0.4

    def test_mean_above_median(self, report):
        """The skew the paper observed in the aggregates."""
        assert report.mean_completion_all > report.median_completion_all

    def test_hunters_explain_the_skew(self, report):
        assert report.skew_explained_by_hunters()

    def test_render(self, report):
        assert "hunters" in report.render()

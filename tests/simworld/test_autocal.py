"""Automated homophily calibration."""

import dataclasses

import pytest

from repro import WorldConfig, constants
from repro.simworld.autocal import (
    CalibrationResult,
    calibrate_homophily,
    homophily_loss,
)


class TestHomophilyLoss:
    def test_default_config_scores_well(self):
        config = WorldConfig(n_users=15_000, seed=3)
        loss, achieved = homophily_loss(
            config, dict(constants.HOMOPHILY_CORRELATIONS)
        )
        assert loss < 0.3
        assert set(achieved) == set(constants.HOMOPHILY_CORRELATIONS)

    def test_detuned_config_scores_worse(self):
        base = WorldConfig(n_users=15_000, seed=3)
        detuned = dataclasses.replace(
            base, social=dataclasses.replace(base.social, stub_noise=20.0)
        )
        loss_base, _ = homophily_loss(
            base, dict(constants.HOMOPHILY_CORRELATIONS)
        )
        loss_detuned, _ = homophily_loss(
            detuned, dict(constants.HOMOPHILY_CORRELATIONS)
        )
        assert loss_detuned > loss_base


class TestCalibrateHomophily:
    def test_improves_a_detuned_start(self):
        base = WorldConfig(n_users=10_000, seed=5)
        detuned = dataclasses.replace(
            base,
            social=dataclasses.replace(base.social, stub_noise=5.0),
        )
        result = calibrate_homophily(
            n_users=10_000, seed=5, iterations=2, base=detuned
        )
        assert isinstance(result, CalibrationResult)
        assert result.loss <= result.history[0]
        assert result.config.social.stub_noise < 5.0

    def test_history_monotone_nonincreasing(self):
        result = calibrate_homophily(n_users=10_000, seed=5, iterations=1)
        assert all(
            later <= earlier + 1e-12
            for earlier, later in zip(result.history, result.history[1:])
        )

    def test_rejects_unknown_targets(self):
        with pytest.raises(ValueError):
            calibrate_homophily(targets={"bogus": 0.5}, n_users=10_000)

    def test_render(self):
        result = calibrate_homophily(n_users=10_000, seed=5, iterations=0)
        text = result.render()
        assert "market_value" in text
        assert "stub_noise" in text

"""World orchestration: determinism, cross-table consistency."""

import numpy as np
import pytest

from repro import SteamWorld, WorldConfig


class TestDeterminism:
    def test_same_seed_same_world(self):
        a = SteamWorld.generate(WorldConfig(n_users=3_000, seed=55))
        b = SteamWorld.generate(WorldConfig(n_users=3_000, seed=55))
        assert np.array_equal(a.dataset.friends.u, b.dataset.friends.u)
        assert np.array_equal(
            a.dataset.library.total_min, b.dataset.library.total_min
        )
        assert np.array_equal(
            a.dataset.snapshot2.owned, b.dataset.snapshot2.owned
        )

    def test_different_seed_differs(self):
        a = SteamWorld.generate(WorldConfig(n_users=3_000, seed=55))
        b = SteamWorld.generate(WorldConfig(n_users=3_000, seed=56))
        assert not np.array_equal(a.dataset.friends.u, b.dataset.friends.u)


class TestConstruction:
    def test_generate_kwargs_shortcut(self):
        world = SteamWorld.generate(n_users=2_000, seed=1)
        assert world.config.n_users == 2_000

    def test_rejects_config_plus_kwargs(self):
        with pytest.raises(TypeError):
            SteamWorld.generate(WorldConfig(n_users=2_000), n_users=3_000)

    def test_rejects_tiny_population(self):
        with pytest.raises(ValueError):
            WorldConfig(n_users=10)


class TestConsistency:
    def test_dataset_tables_aligned(self, small_dataset):
        ds = small_dataset
        assert ds.accounts.n_users == ds.n_users
        assert ds.friends.n_users == ds.n_users
        assert ds.library.n_users == ds.n_users
        assert ds.groups.n_users == ds.n_users

    def test_summary_totals_consistent(self, small_dataset):
        summary = small_dataset.summary()
        assert summary["accounts"] == small_dataset.n_users
        assert summary["friendships"] == small_dataset.friends.n_edges
        assert summary["owned_games"] == small_dataset.library.owned.nnz

    def test_scaled_totals_near_paper(self, world):
        """Scaling the synthetic totals to 108.7M accounts should land
        near the paper's headline numbers."""
        summary = world.dataset.summary()
        scale = 108_700_000 / world.config.n_users
        assert summary["owned_games"] * scale == pytest.approx(
            384_300_000, rel=0.12
        )
        assert summary["friendships"] * scale == pytest.approx(
            196_370_000, rel=0.18
        )
        assert summary["group_memberships"] * scale == pytest.approx(
            81_300_000, rel=0.15
        )
        assert summary["playtime_years"] * scale == pytest.approx(
            1_110_000, rel=0.30
        )
        assert summary["market_value_usd"] * scale == pytest.approx(
            5.326e9, rel=0.30
        )

    def test_hidden_truth_shapes(self, small_world):
        n = small_world.config.n_users
        assert len(small_world.latents) == n
        assert len(small_world.geography.country) == n
        assert len(small_world.ownership.owner_mask) == n

"""Latent factor copula: correlations, blending, conditioning."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simworld.config import FactorConfig
from repro.simworld.copula import (
    FACTOR_NAMES,
    conditional_uniform,
    correlation_matrix,
    draw_latents,
    pearson_to_spearman,
    spearman_to_pearson,
)


class TestCorrelationMatrix:
    def test_is_psd_with_unit_diagonal(self):
        corr = correlation_matrix(FactorConfig())
        assert np.allclose(np.diag(corr), 1.0)
        assert np.linalg.eigvalsh(corr).min() > -1e-10

    def test_symmetric(self):
        corr = correlation_matrix(FactorConfig())
        assert np.allclose(corr, corr.T)

    def test_extreme_config_gets_repaired(self):
        config = FactorConfig(
            soc_wealth=0.95, soc_play=0.95, wealth_play=-0.9
        )
        corr = correlation_matrix(config)
        assert np.linalg.eigvalsh(corr).min() > -1e-10
        assert np.allclose(np.diag(corr), 1.0)


class TestDrawLatents:
    def test_shape_and_standardization(self, rng):
        latents = draw_latents(rng, 50_000, FactorConfig())
        assert len(latents) == 50_000
        for name in FACTOR_NAMES:
            column = latents.factor(name)
            assert abs(column.mean()) < 0.03
            assert column.std() == pytest.approx(1.0, abs=0.03)

    def test_realized_correlations_match_config(self, rng):
        config = FactorConfig()
        latents = draw_latents(rng, 100_000, config)
        realized = np.corrcoef(latents.z.T)
        target = correlation_matrix(config)
        assert np.allclose(realized, target, atol=0.02)

    def test_uniform_transform_is_uniform(self, rng):
        latents = draw_latents(rng, 20_000, FactorConfig())
        u = latents.uniform("wealth")
        assert 0.0 < u.min() and u.max() < 1.0
        hist, _ = np.histogram(u, bins=10, range=(0, 1))
        assert hist.std() / hist.mean() < 0.1

    def test_rejects_bad_shape(self):
        from repro.simworld.copula import LatentFactors

        with pytest.raises(ValueError):
            LatentFactors(z=np.zeros((10, 3)))


class TestBlend:
    def test_blend_is_standardized_for_orthogonal_factors(self, rng):
        latents = draw_latents(
            rng,
            100_000,
            FactorConfig(
                soc_wealth=0.0, soc_price=0.0, soc_play=0.0, soc_rec=0.0,
                wealth_price=0.0, wealth_play=0.0, wealth_rec=0.0,
                price_play=0.0, price_rec=0.0, play_rec=0.0,
            ),
        )
        blend = latents.blend({"soc": 1.0, "wealth": 1.0})
        assert blend.std() == pytest.approx(1.0, abs=0.02)

    def test_blend_with_noise(self, rng):
        latents = draw_latents(rng, 10_000, FactorConfig())
        noise = rng.standard_normal(10_000)
        blend = latents.blend({"soc": 1.0, "noise": 1.0}, noise=noise)
        assert np.corrcoef(blend, latents.factor("soc"))[0, 1] > 0.5

    def test_blend_rejects_all_zero(self, rng):
        latents = draw_latents(rng, 100, FactorConfig())
        with pytest.raises(ValueError):
            latents.blend({"soc": 0.0})


class TestConditionalUniform:
    def test_output_uniform_on_selection(self, rng):
        u = rng.random(100_000)
        selected = u > 0.7
        cond = conditional_uniform(u, selected, 0.3)
        assert cond.min() >= 0.0 and cond.max() < 1.0
        hist, _ = np.histogram(cond, bins=10, range=(0, 1))
        assert hist.std() / hist.mean() < 0.1

    def test_preserves_order(self, rng):
        u = rng.random(1_000)
        selected = u > 0.5
        cond = conditional_uniform(u, selected, 0.5)
        assert np.all(np.argsort(cond) == np.argsort(u[selected]))

    def test_rejects_bad_fraction(self, rng):
        u = rng.random(10)
        with pytest.raises(ValueError):
            conditional_uniform(u, u > 0.5, 0.0)


class TestSpearmanConversion:
    @given(st.floats(min_value=-0.95, max_value=0.95))
    @settings(max_examples=40)
    def test_roundtrip(self, rho):
        assert pearson_to_spearman(
            spearman_to_pearson(rho)
        ) == pytest.approx(rho, abs=1e-9)

    def test_known_values(self):
        assert spearman_to_pearson(0.0) == 0.0
        assert spearman_to_pearson(1.0) == pytest.approx(1.0)

    def test_empirical_agreement(self, rng):
        """Gaussian copula: measured Spearman ~ (6/pi) asin(r/2)."""
        from scipy.stats import spearmanr

        r = spearman_to_pearson(0.5)
        cov = np.array([[1.0, r], [r, 1.0]])
        sample = rng.multivariate_normal([0, 0], cov, size=200_000)
        rho = spearmanr(sample[:, 0], sample[:, 1]).statistic
        assert rho == pytest.approx(0.5, abs=0.01)

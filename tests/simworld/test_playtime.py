"""Playtime attachment (Section 6, Figures 6-7, 10)."""

import numpy as np
import pytest

from repro.simworld.catalog import build_catalog
from repro.simworld.config import (
    CatalogConfig,
    FactorConfig,
    OwnershipConfig,
    PlaytimeConfig,
)
from repro.simworld.copula import draw_latents
from repro.simworld.ownership import build_ownership
from repro.simworld.playtime import (
    _row_sums,
    build_playtimes,
    rank_uniform,
    total_playtime_curve,
    twoweek_curve,
)


class TestRowSums:
    """``np.add.reduceat`` empty-segment regression.

    ``reduceat`` does NOT sum an empty segment to zero: for
    ``indptr[i] == indptr[i+1]`` it returns ``values[indptr[i]]`` — a
    *neighboring* segment's element.  These hand-built ``indptr``
    arrays (with repeated offsets) would surface the naive bug as a
    stolen neighbor value.
    """

    def test_empty_middle_segment_sums_to_zero(self):
        values = np.array([5.0, 7.0, 11.0, 13.0])
        # Segments: [0:2]=[5,7], [2:2]=empty, [2:4]=[11,13].  The naive
        # reduceat reports 11.0 (the neighbor's element) for segment 1.
        indptr = np.array([0, 2, 2, 4])
        assert _row_sums(values, indptr).tolist() == [12.0, 0.0, 24.0]

    def test_consecutive_and_trailing_empty_segments(self):
        values = np.array([3.0])
        indptr = np.array([0, 0, 0, 1, 1])
        assert _row_sums(values, indptr).tolist() == [
            0.0,
            0.0,
            3.0,
            0.0,
        ]

    def test_all_segments_empty(self):
        # The appended sentinel keeps reduceat in-bounds even when no
        # user owns anything at all.
        values = np.empty(0)
        indptr = np.zeros(4, dtype=np.int64)
        assert _row_sums(values, indptr).tolist() == [0.0, 0.0, 0.0]


@pytest.fixture(scope="module")
def setup():
    catalog = build_catalog(np.random.default_rng(4), CatalogConfig())
    latents = draw_latents(np.random.default_rng(5), 40_000, FactorConfig())
    ownership = build_ownership(
        np.random.default_rng(21), latents, catalog, OwnershipConfig()
    )
    playtimes = build_playtimes(
        np.random.default_rng(31),
        latents,
        ownership,
        catalog,
        OwnershipConfig(),
        PlaytimeConfig(),
    )
    return catalog, latents, ownership, playtimes


def _user_sums(values, ownership):
    out = np.zeros(ownership.n_users, dtype=np.int64)
    np.add.at(out, ownership.owned.row_ids(), values)
    return out


class TestRankUniform:
    def test_uniform_output(self, rng):
        u = rank_uniform(rng.standard_normal(1_000))
        assert u.min() > 0 and u.max() < 1
        assert len(np.unique(u)) == 1_000

    def test_monotone_in_input(self, rng):
        x = rng.standard_normal(500)
        u = rank_uniform(x)
        order = np.argsort(x, kind="stable")
        assert np.all(np.diff(u[order]) > 0)


class TestCurves:
    def test_total_curve_anchors(self):
        curve = total_playtime_curve(PlaytimeConfig())
        assert curve.percentile(50) == pytest.approx(34.0, rel=1e-6)
        assert curve.percentile(99) == pytest.approx(2660.1, rel=1e-6)

    def test_twoweek_curve_capped(self):
        curve = twoweek_curve(PlaytimeConfig())
        assert curve.ppf(1 - 1e-12) <= 336.0


class TestStructure:
    def test_alignment(self, setup):
        _, _, ownership, playtimes = setup
        assert len(playtimes.total_min) == ownership.owned.nnz
        assert len(playtimes.twoweek_min) == ownership.owned.nnz

    def test_twoweek_never_exceeds_total(self, setup):
        _, _, _, playtimes = setup
        assert np.all(
            playtimes.total_min >= playtimes.twoweek_min.astype(np.int64)
        )

    def test_never_played_users_have_zero_minutes(self, setup):
        _, _, ownership, playtimes = setup
        totals = _user_sums(playtimes.total_min, ownership)
        assert np.all(totals[playtimes.never_played_mask] == 0)

    def test_playing_owners_have_at_least_one_played_game(self, setup):
        _, _, ownership, playtimes = setup
        owners = ownership.owned_counts > 0
        playing = owners & ~playtimes.never_played_mask
        totals = _user_sums(playtimes.total_min, ownership)
        assert np.all(totals[playing] > 0)

    def test_nonzero_twoweek_matches_active_mask(self, setup):
        _, _, ownership, playtimes = setup
        twoweek = _user_sums(
            playtimes.twoweek_min.astype(np.int64), ownership
        )
        active = twoweek > 0
        # Active users flagged by the generator must have playable games;
        # generated activity beyond the mask is not allowed.
        assert np.all(playtimes.twoweek_active_mask[active])


class TestCalibration:
    def test_twoweek_zero_share(self, setup):
        _, _, ownership, playtimes = setup
        owners = ownership.owned_counts > 0
        twoweek = _user_sums(
            playtimes.twoweek_min.astype(np.int64), ownership
        )
        zero_share = np.mean(twoweek[owners] == 0)
        assert zero_share == pytest.approx(0.82, abs=0.03)

    def test_total_playtime_median_anchor(self, setup):
        _, _, ownership, playtimes = setup
        totals = _user_sums(playtimes.total_min, ownership) / 60.0
        positive = totals[totals > 0]
        assert np.median(positive) == pytest.approx(34.0, rel=0.12)

    def test_twoweek_cap(self, setup):
        _, _, ownership, playtimes = setup
        twoweek = _user_sums(
            playtimes.twoweek_min.astype(np.int64), ownership
        )
        assert twoweek.max() <= 336 * 60

    def test_idlers_near_cap(self, setup):
        _, _, ownership, playtimes = setup
        twoweek = _user_sums(
            playtimes.twoweek_min.astype(np.int64), ownership
        )
        idlers = playtimes.idler_mask
        if idlers.any():
            assert twoweek[idlers].min() >= 0.80 * 336 * 60 * 0.95

    def test_unplayed_rate_overall(self, setup):
        _, _, ownership, playtimes = setup
        # Roughly 30% of copies are never launched (Figure 5).
        unplayed = np.mean(playtimes.total_min == 0)
        assert 0.22 < unplayed < 0.42

    def test_multiplayer_total_share(self, setup):
        catalog, _, ownership, playtimes = setup
        mp = catalog.table.multiplayer[ownership.owned.indices]
        total = playtimes.total_min.astype(float)
        share = total[mp].sum() / total.sum()
        assert share == pytest.approx(0.577, abs=0.12)

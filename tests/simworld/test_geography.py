"""Country/city assignment and self-report rates (Table 1)."""

import numpy as np
import pytest

from repro import constants
from repro.simworld.config import GeographyConfig
from repro.simworld.geography import (
    build_geography,
    country_name_list,
    country_shares,
)


@pytest.fixture(scope="module")
def geo():
    rng = np.random.default_rng(9)
    return build_geography(rng, 80_000, GeographyConfig())


class TestCountryShares:
    def test_sum_to_one(self):
        shares = country_shares(GeographyConfig())
        assert shares.sum() == pytest.approx(1.0)

    def test_head_matches_table1(self):
        shares = country_shares(GeographyConfig())
        assert shares[0] == pytest.approx(0.2021, abs=1e-4)
        assert shares[1] == pytest.approx(0.1018, abs=1e-4)

    def test_all_236_countries(self):
        shares = country_shares(GeographyConfig())
        names = country_name_list(GeographyConfig())
        assert len(shares) == constants.NUM_DISTINCT_COUNTRIES
        assert len(names) == constants.NUM_DISTINCT_COUNTRIES
        assert names[0] == "United States"

    def test_tail_decreasing(self):
        shares = country_shares(GeographyConfig())
        tail = shares[10:]
        assert np.all(np.diff(tail) <= 0)


class TestAssignment:
    def test_us_share_of_population(self, geo):
        us = np.mean(geo.country == 0)
        assert us == pytest.approx(0.2021, abs=0.01)

    def test_report_rates(self, geo):
        assert np.mean(geo.reports_country) == pytest.approx(0.107, abs=0.01)
        assert np.mean(geo.reports_city) == pytest.approx(0.040, abs=0.008)

    def test_city_reporters_subset_of_country_reporters(self, geo):
        assert np.all(geo.reports_country[geo.reports_city])

    def test_city_ids_within_country_ranges(self, geo):
        lo = geo.city_offsets[geo.country]
        hi = geo.city_offsets[geo.country + 1]
        assert np.all(geo.city >= lo)
        assert np.all(geo.city < hi)

    def test_reported_columns_hide_unreported(self, geo):
        country = geo.reported_country()
        city = geo.reported_city()
        assert np.all(country[~geo.reports_country] == -1)
        assert np.all(city[~geo.reports_city] == -1)
        assert np.all(country[geo.reports_country] >= 0)

    def test_city_population_skewed_within_country(self, geo):
        """Within the biggest country, the top city dominates (Zipf)."""
        us_cities = geo.city[geo.country == 0]
        counts = np.bincount(us_cities - geo.city_offsets[0])
        assert counts.max() > 3 * np.median(counts[counts > 0])

    def test_deterministic(self):
        a = build_geography(np.random.default_rng(3), 1000, GeographyConfig())
        b = build_geography(np.random.default_rng(3), 1000, GeographyConfig())
        assert np.array_equal(a.country, b.country)
        assert np.array_equal(a.city, b.city)

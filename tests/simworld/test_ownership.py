"""Library generation (Section 5, Figure 4)."""

import numpy as np
import pytest

from repro.simworld.catalog import build_catalog
from repro.simworld.config import CatalogConfig, FactorConfig, OwnershipConfig
from repro.simworld.copula import draw_latents
from repro.simworld.ownership import (
    build_ownership,
    owned_curve,
    solve_owner_fraction,
)


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(21)
    catalog = build_catalog(np.random.default_rng(4), CatalogConfig())
    latents = draw_latents(np.random.default_rng(5), 40_000, FactorConfig())
    ownership = build_ownership(rng, latents, catalog, OwnershipConfig())
    return catalog, latents, ownership


class TestOwnerGating:
    def test_owner_fraction_yields_paper_mean(self, setup):
        _, _, ownership = setup
        mean = ownership.owned_counts.mean()
        assert mean == pytest.approx(3.54, rel=0.08)

    def test_solve_owner_fraction_bounded(self):
        frac = solve_owner_fraction(OwnershipConfig())
        assert 0.2 < frac < 0.5

    def test_owners_gated_on_wealth(self, setup):
        _, latents, ownership = setup
        wealth = latents.uniform("wealth")
        assert wealth[ownership.owner_mask].min() > wealth[
            ~ownership.owner_mask
        ].max() - 1e-9


class TestLibraries:
    def test_counts_match_csr(self, setup):
        _, _, ownership = setup
        assert np.array_equal(
            ownership.owned_counts, ownership.owned.counts()
        )

    def test_no_duplicate_games_within_user(self, setup):
        _, _, ownership = setup
        indptr = ownership.owned.indptr
        games = ownership.owned.indices
        for user in range(0, ownership.n_users, 997):
            row = games[indptr[user] : indptr[user + 1]]
            assert len(np.unique(row)) == len(row)

    def test_only_games_are_owned(self, setup):
        catalog, _, ownership = setup
        owned_products = np.unique(ownership.owned.indices)
        assert np.all(catalog.table.is_game[owned_products])

    def test_percentile_anchors(self, setup):
        _, _, ownership = setup
        counts = ownership.owned_counts
        positive = counts[counts > 0]
        assert np.percentile(positive, 50) == pytest.approx(4, abs=1)
        assert np.percentile(positive, 80) == pytest.approx(10, abs=1.5)
        assert np.percentile(positive, 90) == pytest.approx(21, rel=0.15)

    def test_popular_games_owned_more(self, setup):
        catalog, _, ownership = setup
        owners_per_game = np.bincount(
            ownership.owned.indices, minlength=catalog.n_products
        )
        games = catalog.table.game_ids()
        rho = np.corrcoef(
            np.log(catalog.popularity[games] + 1e-12),
            np.log(owners_per_game[games] + 1.0),
        )[0, 1]
        assert rho > 0.7

    def test_price_tilt_decouples_value_from_count(self, setup):
        """Spearman(owned, value) should be well below 1 (Section 7)."""
        from scipy.stats import spearmanr

        catalog, _, ownership = setup
        value = np.zeros(ownership.n_users)
        entry_user = ownership.owned.row_ids()
        np.add.at(
            value,
            entry_user,
            catalog.table.price_cents[ownership.owned.indices] / 100.0,
        )
        owners = ownership.owned_counts > 0
        rho = spearmanr(
            ownership.owned_counts[owners], value[owners]
        ).statistic
        assert 0.4 < rho < 0.85


class TestCollectors:
    def test_collector_counts_at_scale(self):
        """At 200k users a couple of collectors with huge libraries."""
        rng = np.random.default_rng(3)
        catalog = build_catalog(np.random.default_rng(4), CatalogConfig())
        latents = draw_latents(
            np.random.default_rng(5), 150_000, FactorConfig()
        )
        ownership = build_ownership(
            rng, latents, catalog, OwnershipConfig()
        )
        collectors = ownership.is_collector
        assert collectors.sum() >= 1
        assert ownership.owned_counts[collectors].min() >= 450 * 0.9 or (
            ownership.owned_counts[collectors].min()
            >= OwnershipConfig().collector_bump_range[0]
        )

    def test_collectors_are_owners(self, setup):
        _, _, ownership = setup
        assert np.all(ownership.owner_mask[ownership.is_collector])

"""Second-snapshot growth model (Section 8)."""

import numpy as np
import pytest


@pytest.fixture(scope="module")
def tables(world):
    return world.dataset, world.dataset.snapshot2


class TestMonotoneGrowth:
    def test_owned_never_shrinks(self, tables):
        ds, s2 = tables
        assert np.all(s2.owned >= ds.owned_counts())

    def test_value_never_shrinks(self, tables):
        ds, s2 = tables
        value1 = ds.library.user_value_cents(ds.catalog.price_cents)
        assert np.all(s2.value_cents >= value1)

    def test_total_playtime_never_shrinks(self, tables):
        ds, s2 = tables
        assert np.all(s2.total_min >= ds.library.user_total_min())

    def test_played_bounded_by_owned(self, tables):
        _, s2 = tables
        assert np.all(s2.played <= s2.owned)

    def test_non_owners_stay_non_owners(self, tables):
        ds, s2 = tables
        non_owner = ds.owned_counts() == 0
        assert np.all(s2.owned[non_owner] == 0)


class TestGrowthMagnitudes:
    def test_p80_owned_grows_modestly(self, tables):
        ds, s2 = tables
        owned1 = ds.owned_counts()
        p80_1 = np.percentile(owned1[owned1 > 0], 80)
        p80_2 = np.percentile(s2.owned[s2.owned > 0], 80)
        # paper: 10 -> 15.
        assert p80_2 / p80_1 == pytest.approx(1.5, abs=0.35)

    def test_tail_outgrows_p80(self, tables):
        ds, s2 = tables
        owned1 = ds.owned_counts()
        max_growth = s2.owned.max() / owned1.max()
        p80_growth = np.percentile(
            s2.owned[s2.owned > 0], 80
        ) / np.percentile(owned1[owned1 > 0], 80)
        assert max_growth >= p80_growth * 0.8

    def test_value_p80_growth_near_paper(self, tables):
        ds, s2 = tables
        value1 = ds.market_value_dollars()
        value2 = s2.value_cents / 100.0
        ratio = np.percentile(value2[value2 > 0], 80) / np.percentile(
            value1[value1 > 0], 80
        )
        assert ratio == pytest.approx(1.49, abs=0.35)

    def test_total_playtime_mean_growth(self, tables):
        ds, s2 = tables
        total1 = ds.library.user_total_min().sum()
        assert s2.total_min.sum() / total1 == pytest.approx(1.55, abs=0.25)


class TestTwoWeekRedraw:
    def test_zero_share_preserved(self, tables):
        ds, s2 = tables
        owners = ds.owned_counts() > 0
        zero = np.mean(s2.twoweek_min[owners] == 0)
        assert zero == pytest.approx(0.82, abs=0.04)

    def test_window_is_fresh(self, tables):
        """Snapshot-2 activity is a new two-week window, not a copy."""
        ds, s2 = tables
        tw1 = ds.library.user_twoweek_min()
        active1 = tw1 > 0
        active2 = s2.twoweek_min > 0
        overlap = np.mean(active2[active1])
        assert 0.2 < overlap < 0.95  # correlated but not identical

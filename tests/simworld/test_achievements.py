"""Achievement generation (Section 9)."""

import numpy as np
import pytest

from repro.simworld.achievements import build_achievements
from repro.simworld.catalog import build_catalog
from repro.simworld.config import AchievementConfig, CatalogConfig


@pytest.fixture(scope="module")
def setup():
    catalog = build_catalog(np.random.default_rng(4), CatalogConfig())
    table = build_achievements(
        np.random.default_rng(6), catalog, AchievementConfig()
    )
    return catalog, table


class TestCounts:
    def test_only_games_have_achievements(self, setup):
        catalog, table = setup
        non_games = ~catalog.table.is_game
        assert np.all(table.count[non_games] == 0)

    def test_count_statistics_near_paper(self, setup):
        _, table = setup
        counted = table.count[table.count > 0]
        assert np.median(counted) == pytest.approx(24, abs=5)
        assert counted.mean() == pytest.approx(33.1, rel=0.35)
        mode = np.argmax(np.bincount(counted))
        assert 8 <= mode <= 18  # paper: 12

    def test_max_below_paper_max(self, setup):
        _, table = setup
        assert table.count.max() <= 1629

    def test_spam_games_exist(self, setup):
        _, table = setup
        assert np.sum(table.count > 90) > 10

    def test_share_without_achievements(self, setup):
        catalog, table = setup
        games = catalog.table.is_game
        share = np.mean(table.count[games] == 0)
        assert share == pytest.approx(0.22, abs=0.05)


class TestRates:
    def test_indptr_consistent(self, setup):
        _, table = setup
        assert np.all(np.diff(table.indptr) == table.count)
        assert len(table.rates) == table.indptr[-1]

    def test_rates_in_range(self, setup):
        _, table = setup
        assert table.rates.min() > 0
        assert table.rates.max() < 1

    def test_rates_sorted_descending_within_game(self, setup):
        _, table = setup
        has = np.flatnonzero(table.count > 1)
        for product in has[:50]:
            rates = table.game_rates(int(product))
            assert np.all(np.diff(rates) <= 0)

    def test_mean_completion_right_skewed(self, setup):
        _, table = setup
        mean_rate = table.mean_completion()
        rated = np.isfinite(mean_rate)
        values = mean_rate[rated]
        assert np.median(values) < values.mean()

    def test_quality_drives_count_in_band(self, setup):
        """1-90 band couples to quality (the paper's R=0.53 mechanism)."""
        catalog, table = setup
        band = (table.count >= 1) & (table.count <= 90)
        rho = np.corrcoef(
            catalog.quality[band], table.count[band].astype(float)
        )[0, 1]
        assert rho > 0.3

    def test_adventure_higher_completion_than_strategy(self, setup):
        catalog, table = setup
        mean_rate = table.mean_completion()
        rated = np.isfinite(mean_rate)
        adv = rated & catalog.table.has_genre("Adventure")
        strat = rated & catalog.table.has_genre("Strategy")
        assert np.mean(mean_rate[adv]) > np.mean(mean_rate[strat])

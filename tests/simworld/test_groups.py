"""Group generation (Section 4.2, Table 2, Figure 3)."""

import dataclasses

import numpy as np
import pytest

from repro.simworld.catalog import build_catalog
from repro.simworld.config import (
    CatalogConfig,
    FactorConfig,
    GroupConfig,
    OwnershipConfig,
)
from repro.simworld.copula import draw_latents
from repro.simworld.groups import (
    _Recruits,
    _recruit_all,
    build_groups,
    group_sizes,
    membership_curve,
)
from repro.simworld.ownership import build_ownership
from repro.store.tables import CSRMatrix, GroupType


class TestSizes:
    def test_sizes_hit_budget(self, rng):
        sizes = group_sizes(rng, 2_000, 60_000, GroupConfig())
        assert sizes.sum() == pytest.approx(60_000, rel=0.1)

    def test_sizes_heavy_tailed(self, rng):
        sizes = group_sizes(rng, 5_000, 150_000, GroupConfig())
        assert sizes.max() > 20 * np.median(sizes)

    def test_min_size(self, rng):
        sizes = group_sizes(rng, 100, 50, GroupConfig())
        assert sizes.min() >= 1


class TestMembershipCurve:
    def test_anchors(self):
        curve = membership_curve(GroupConfig())
        assert curve.percentile(50) == 2
        assert curve.percentile(95) == 22


class TestFocusGuards:
    """Degenerate focus-game inputs must not crash recruitment.

    Two regressions: a focus game with an *empty* owner segment used to
    make ``_recruit_all`` draw from position ``-1`` of the owner array,
    and an all-non-game catalog used to clamp a popularity pick into an
    empty ``game_ids``.
    """

    def test_focus_game_without_owners_recruits_globally(self):
        n_users = 12
        # game 0 -> owners {0,1,2}, game 1 -> nobody, game 2 -> {3,4}.
        owners_of, _ = CSRMatrix.from_pairs(
            np.array([0, 0, 0, 2, 2]),
            np.array([0, 1, 2, 3, 4], dtype=np.int32),
            3,
        )
        sizes = np.array([4, 3], dtype=np.int64)
        # Group 0 is focused on the ownerless game 1 — the guard must
        # route its whole quota through the global pool.  Group 1 keeps
        # a normal focus so both paths run in one batched call.
        focus_game = np.array([1, 2], dtype=np.int64)
        members = _recruit_all(
            np.random.default_rng(0),
            sizes,
            focus_game,
            np.array([False, False]),
            GroupConfig(),
            owners_of,
            np.zeros(owners_of.nnz),
            np.ones(n_users),
            _Recruits(
                weights_cdf=np.cumsum(np.ones(n_users)),
                users=np.arange(n_users, dtype=np.int32),
            ),
            None,
            n_users,
        )
        assert members.counts().tolist() == sizes.tolist()
        for g in range(2):
            row = members.row(g)
            assert len(np.unique(row)) == len(row)
            assert row.min() >= 0 and row.max() < n_users

    def test_catalog_without_games_leaves_groups_unfocused(self):
        rng = np.random.default_rng(11)
        catalog = build_catalog(rng, CatalogConfig())
        latents = draw_latents(rng, 3_000, FactorConfig())
        ownership = build_ownership(
            rng, latents, catalog, OwnershipConfig()
        )
        # Demote every product to a non-game: game_ids comes out empty.
        no_games = dataclasses.replace(
            catalog,
            table=dataclasses.replace(
                catalog.table,
                is_game=np.zeros(catalog.n_products, dtype=bool),
            ),
        )
        groups = build_groups(
            np.random.default_rng(12),
            latents,
            ownership,
            no_games,
            GroupConfig(),
        )
        assert np.all(groups.focus_game == -1)
        # Recruitment still fills groups from the global pool.
        assert groups.members.nnz > 0
        members = groups.members.indices
        assert members.min() >= 0
        assert members.max() < len(latents)


class TestGeneratedGroups:
    def test_group_count_scales(self, small_world):
        groups = small_world.dataset.groups
        expected = 0.0276 * small_world.config.n_users
        assert groups.n_groups == pytest.approx(expected, rel=0.05)

    def test_memberships_per_account(self, world):
        ds = world.dataset
        per_account = ds.groups.members.nnz / ds.n_users
        assert per_account == pytest.approx(0.748, rel=0.15)

    def test_member_ids_valid(self, small_world):
        groups = small_world.dataset.groups
        members = groups.members.indices
        assert members.min() >= 0
        assert members.max() < small_world.config.n_users

    def test_no_duplicate_members_within_group(self, small_world):
        groups = small_world.dataset.groups
        for g in range(0, groups.n_groups, 37):
            row = groups.members.row(g)
            assert len(np.unique(row)) == len(row)

    def test_game_focused_groups_have_focus(self, small_world):
        groups = small_world.dataset.groups
        focused_types = np.isin(
            groups.group_type,
            [GroupType.SINGLE_GAME, GroupType.GAME_SERVER],
        )
        assert np.all(groups.focus_game[focused_types] >= 0)
        assert np.all(groups.focus_game[~focused_types] == -1)

    def test_top250_type_mix_matches_table2(self, world):
        groups = world.dataset.groups
        sizes = groups.sizes()
        top = np.argsort(-sizes)[:250]
        counts = np.bincount(groups.group_type[top], minlength=6)
        # Game Server should dominate (45.6% in Table 2).
        assert counts[GroupType.GAME_SERVER] == max(counts)
        assert counts[GroupType.GAME_SERVER] == pytest.approx(114, abs=25)
        assert counts[GroupType.SINGLE_GAME] == pytest.approx(51, abs=20)

    def test_focus_members_mostly_own_focus_game(self, world):
        """Members of single-game groups own the focus game at ~affinity."""
        ds = world.dataset
        groups = ds.groups
        lib = ds.library
        single = np.flatnonzero(
            (groups.group_type == GroupType.SINGLE_GAME)
            & (groups.sizes() >= 50)
        )
        if len(single) == 0:
            pytest.skip("no large single-game groups at this scale")
        hit_rates = []
        for g in single[:20]:
            members = groups.members.row(int(g))
            focus = int(groups.focus_game[g])
            owns = [
                focus in set(lib.owned.row(int(u)).tolist())
                for u in members[:100]
            ]
            hit_rates.append(np.mean(owns))
        assert np.mean(hit_rates) > 0.5

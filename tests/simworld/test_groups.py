"""Group generation (Section 4.2, Table 2, Figure 3)."""

import numpy as np
import pytest

from repro.simworld.config import GroupConfig
from repro.simworld.groups import group_sizes, membership_curve
from repro.store.tables import GroupType


class TestSizes:
    def test_sizes_hit_budget(self, rng):
        sizes = group_sizes(rng, 2_000, 60_000, GroupConfig())
        assert sizes.sum() == pytest.approx(60_000, rel=0.1)

    def test_sizes_heavy_tailed(self, rng):
        sizes = group_sizes(rng, 5_000, 150_000, GroupConfig())
        assert sizes.max() > 20 * np.median(sizes)

    def test_min_size(self, rng):
        sizes = group_sizes(rng, 100, 50, GroupConfig())
        assert sizes.min() >= 1


class TestMembershipCurve:
    def test_anchors(self):
        curve = membership_curve(GroupConfig())
        assert curve.percentile(50) == 2
        assert curve.percentile(95) == 22


class TestGeneratedGroups:
    def test_group_count_scales(self, small_world):
        groups = small_world.dataset.groups
        expected = 0.0276 * small_world.config.n_users
        assert groups.n_groups == pytest.approx(expected, rel=0.05)

    def test_memberships_per_account(self, world):
        ds = world.dataset
        per_account = ds.groups.members.nnz / ds.n_users
        assert per_account == pytest.approx(0.748, rel=0.15)

    def test_member_ids_valid(self, small_world):
        groups = small_world.dataset.groups
        members = groups.members.indices
        assert members.min() >= 0
        assert members.max() < small_world.config.n_users

    def test_no_duplicate_members_within_group(self, small_world):
        groups = small_world.dataset.groups
        for g in range(0, groups.n_groups, 37):
            row = groups.members.row(g)
            assert len(np.unique(row)) == len(row)

    def test_game_focused_groups_have_focus(self, small_world):
        groups = small_world.dataset.groups
        focused_types = np.isin(
            groups.group_type,
            [GroupType.SINGLE_GAME, GroupType.GAME_SERVER],
        )
        assert np.all(groups.focus_game[focused_types] >= 0)
        assert np.all(groups.focus_game[~focused_types] == -1)

    def test_top250_type_mix_matches_table2(self, world):
        groups = world.dataset.groups
        sizes = groups.sizes()
        top = np.argsort(-sizes)[:250]
        counts = np.bincount(groups.group_type[top], minlength=6)
        # Game Server should dominate (45.6% in Table 2).
        assert counts[GroupType.GAME_SERVER] == max(counts)
        assert counts[GroupType.GAME_SERVER] == pytest.approx(114, abs=25)
        assert counts[GroupType.SINGLE_GAME] == pytest.approx(51, abs=20)

    def test_focus_members_mostly_own_focus_game(self, world):
        """Members of single-game groups own the focus game at ~affinity."""
        ds = world.dataset
        groups = ds.groups
        lib = ds.library
        single = np.flatnonzero(
            (groups.group_type == GroupType.SINGLE_GAME)
            & (groups.sizes() >= 50)
        )
        if len(single) == 0:
            pytest.skip("no large single-game groups at this scale")
        hit_rates = []
        for g in single[:20]:
            members = groups.members.row(int(g))
            focus = int(groups.focus_game[g])
            owns = [
                focus in set(lib.owned.row(int(u)).tolist())
                for u in members[:100]
            ]
            hit_rates.append(np.mean(owns))
        assert np.mean(hit_rates) > 0.5

"""Dataset persistence round-trips."""

import numpy as np
import pytest

from repro.store.io import load_dataset, save_dataset


class TestRoundTrip:
    def test_full_roundtrip(self, small_dataset, tmp_path):
        path = save_dataset(small_dataset, tmp_path / "world")
        assert path.suffix == ".npz"
        loaded = load_dataset(path)

        assert loaded.n_users == small_dataset.n_users
        assert np.array_equal(
            loaded.accounts.id_offset, small_dataset.accounts.id_offset
        )
        assert np.array_equal(loaded.friends.u, small_dataset.friends.u)
        assert np.array_equal(loaded.friends.day, small_dataset.friends.day)
        assert np.array_equal(
            loaded.library.total_min, small_dataset.library.total_min
        )
        assert np.array_equal(
            loaded.groups.members.indices,
            small_dataset.groups.members.indices,
        )
        assert loaded.accounts.country_names == (
            small_dataset.accounts.country_names
        )
        assert loaded.catalog.genre_names == small_dataset.catalog.genre_names

    def test_optional_tables_roundtrip(self, small_dataset, tmp_path):
        path = save_dataset(small_dataset, tmp_path / "with_opt.npz")
        loaded = load_dataset(path)
        assert loaded.achievements is not None
        assert np.array_equal(
            loaded.achievements.rates, small_dataset.achievements.rates
        )
        assert loaded.snapshot2 is not None
        assert np.array_equal(
            loaded.snapshot2.owned, small_dataset.snapshot2.owned
        )

    def test_meta_roundtrip(self, small_dataset, tmp_path):
        path = save_dataset(small_dataset, tmp_path / "meta.npz")
        loaded = load_dataset(path)
        assert loaded.meta.seed == small_dataset.meta.seed
        assert loaded.meta.snapshot1_day == small_dataset.meta.snapshot1_day

    def test_analyses_identical_after_reload(self, small_dataset, tmp_path):
        path = save_dataset(small_dataset, tmp_path / "x.npz")
        loaded = load_dataset(path)
        assert np.array_equal(
            loaded.friend_counts(), small_dataset.friend_counts()
        )
        assert np.allclose(
            loaded.market_value_dollars(),
            small_dataset.market_value_dollars(),
        )

    def test_rejects_future_format(self, small_dataset, tmp_path):
        path = save_dataset(small_dataset, tmp_path / "v.npz")
        _rewrite_npz(path, meta_update={"format_version": 999})
        with pytest.raises(ValueError):
            load_dataset(path)


def _rewrite_npz(path, meta_update=None, mutate=None, drop=None):
    """Re-pack a saved dataset with surgical damage, for integrity tests."""
    import json

    data = dict(np.load(path))
    meta = json.loads(bytes(data["meta.json"]).decode())
    if meta_update:
        meta.update(meta_update)
    if mutate:
        for key, arr in mutate.items():
            data[key] = arr
    for key in drop or ():
        del data[key]
        meta.get("checksums", {}).pop(key, None)
    data["meta.json"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    )
    np.savez_compressed(path, **data)


class TestIntegrity:
    """Format v2: atomic writes and checksum-verified loads (DESIGN.md §9)."""

    def test_save_leaves_no_temp_files(self, small_dataset, tmp_path):
        save_dataset(small_dataset, tmp_path / "clean.npz")
        assert [p.name for p in tmp_path.iterdir()] == ["clean.npz"]

    def test_truncated_file_raises_integrity_error(
        self, small_dataset, tmp_path
    ):
        from repro.store.io import DatasetIntegrityError

        path = save_dataset(small_dataset, tmp_path / "t.npz")
        whole = path.read_bytes()
        path.write_bytes(whole[: len(whole) // 2])
        with pytest.raises(DatasetIntegrityError, match="truncated or corrupt"):
            load_dataset(path)

    def test_checksum_mismatch_names_the_entry(self, small_dataset, tmp_path):
        from repro.store.io import DatasetIntegrityError

        path = save_dataset(small_dataset, tmp_path / "c.npz")
        flipped = small_dataset.accounts.country.copy()
        flipped[0] += 1
        # Keep the old manifest: the array no longer matches it.
        _rewrite_npz(path, mutate={"acc.country": flipped})
        with pytest.raises(DatasetIntegrityError) as excinfo:
            load_dataset(path)
        assert excinfo.value.key == "acc.country"
        assert "acc.country" in str(excinfo.value)

    def test_verify_false_skips_checksums(self, small_dataset, tmp_path):
        path = save_dataset(small_dataset, tmp_path / "s.npz")
        flipped = small_dataset.accounts.country.copy()
        flipped[0] += 1
        _rewrite_npz(path, mutate={"acc.country": flipped})
        loaded = load_dataset(path, verify=False)
        assert loaded.accounts.country[0] == flipped[0]

    def test_missing_required_entry_names_the_key(
        self, small_dataset, tmp_path
    ):
        from repro.store.io import DatasetIntegrityError

        path = save_dataset(small_dataset, tmp_path / "m.npz")
        _rewrite_npz(path, drop=["fr.day"])
        with pytest.raises(DatasetIntegrityError) as excinfo:
            load_dataset(path)
        assert excinfo.value.key == "fr.day"

    def test_v1_files_without_manifest_still_load(
        self, small_dataset, tmp_path
    ):
        import json

        path = save_dataset(small_dataset, tmp_path / "v1.npz")
        data = dict(np.load(path))
        meta = json.loads(bytes(data["meta.json"]).decode())
        meta["format_version"] = 1
        del meta["checksums"]
        data["meta.json"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **data)
        loaded = load_dataset(path)
        assert loaded.n_users == small_dataset.n_users
        assert np.array_equal(
            loaded.friends.day, small_dataset.friends.day
        )

    def test_future_version_message_states_found_and_supported(
        self, small_dataset, tmp_path
    ):
        from repro.store.io import DatasetIntegrityError

        path = save_dataset(small_dataset, tmp_path / "f.npz")
        _rewrite_npz(path, meta_update={"format_version": 999})
        with pytest.raises(DatasetIntegrityError) as excinfo:
            load_dataset(path)
        message = str(excinfo.value)
        assert "999" in message
        assert "1, 2" in message

    def test_roundtrip_checksums_verify_clean(self, small_dataset, tmp_path):
        # The happy path with verification on: nothing should trip.
        path = save_dataset(small_dataset, tmp_path / "ok.npz")
        loaded = load_dataset(path, verify=True)
        assert loaded.fingerprint() == small_dataset.fingerprint()

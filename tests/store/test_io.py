"""Dataset persistence round-trips."""

import numpy as np
import pytest

from repro.store.io import load_dataset, save_dataset


class TestRoundTrip:
    def test_full_roundtrip(self, small_dataset, tmp_path):
        path = save_dataset(small_dataset, tmp_path / "world")
        assert path.suffix == ".npz"
        loaded = load_dataset(path)

        assert loaded.n_users == small_dataset.n_users
        assert np.array_equal(
            loaded.accounts.id_offset, small_dataset.accounts.id_offset
        )
        assert np.array_equal(loaded.friends.u, small_dataset.friends.u)
        assert np.array_equal(loaded.friends.day, small_dataset.friends.day)
        assert np.array_equal(
            loaded.library.total_min, small_dataset.library.total_min
        )
        assert np.array_equal(
            loaded.groups.members.indices,
            small_dataset.groups.members.indices,
        )
        assert loaded.accounts.country_names == (
            small_dataset.accounts.country_names
        )
        assert loaded.catalog.genre_names == small_dataset.catalog.genre_names

    def test_optional_tables_roundtrip(self, small_dataset, tmp_path):
        path = save_dataset(small_dataset, tmp_path / "with_opt.npz")
        loaded = load_dataset(path)
        assert loaded.achievements is not None
        assert np.array_equal(
            loaded.achievements.rates, small_dataset.achievements.rates
        )
        assert loaded.snapshot2 is not None
        assert np.array_equal(
            loaded.snapshot2.owned, small_dataset.snapshot2.owned
        )

    def test_meta_roundtrip(self, small_dataset, tmp_path):
        path = save_dataset(small_dataset, tmp_path / "meta.npz")
        loaded = load_dataset(path)
        assert loaded.meta.seed == small_dataset.meta.seed
        assert loaded.meta.snapshot1_day == small_dataset.meta.snapshot1_day

    def test_analyses_identical_after_reload(self, small_dataset, tmp_path):
        path = save_dataset(small_dataset, tmp_path / "x.npz")
        loaded = load_dataset(path)
        assert np.array_equal(
            loaded.friend_counts(), small_dataset.friend_counts()
        )
        assert np.allclose(
            loaded.market_value_dollars(),
            small_dataset.market_value_dollars(),
        )

    def test_rejects_future_format(self, small_dataset, tmp_path):
        import json

        path = save_dataset(small_dataset, tmp_path / "v.npz")
        data = dict(np.load(path))
        meta = json.loads(bytes(data["meta.json"]).decode())
        meta["format_version"] = 999
        data["meta.json"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError):
            load_dataset(path)

"""Merging sharded datasets."""

import dataclasses

import numpy as np
import pytest

from repro.store.dataset import SteamDataset
from repro.store.merge import merge_datasets
from repro.store.tables import (
    AccountTable,
    CSRMatrix,
    FriendTable,
    GroupTable,
    LibraryTable,
)


def _slice_dataset(dataset: SteamDataset, users: np.ndarray) -> SteamDataset:
    """Extract the sub-dataset for ``users`` (sorted ascending)."""
    index = {int(u): i for i, u in enumerate(users)}
    accounts = AccountTable(
        id_offset=dataset.accounts.id_offset[users],
        created_day=dataset.accounts.created_day[users],
        country=dataset.accounts.country[users],
        city=dataset.accounts.city[users],
        country_names=dataset.accounts.country_names,
    )
    fr = dataset.friends
    keep = np.isin(fr.u, users) & np.isin(fr.v, users)
    u = np.array([index[int(x)] for x in fr.u[keep]], dtype=np.int32)
    v = np.array([index[int(x)] for x in fr.v[keep]], dtype=np.int32)
    friends = FriendTable(
        u=np.minimum(u, v),
        v=np.maximum(u, v),
        day=fr.day[keep],
        n_users=len(users),
    )
    lib = dataset.library
    entry_user = lib.owned.row_ids()
    keep_lib = np.isin(entry_user, users)
    local_user = np.array(
        [index[int(x)] for x in entry_user[keep_lib]], dtype=np.int64
    )
    owned, perm = CSRMatrix.from_pairs(
        local_user, lib.owned.indices[keep_lib], len(users)
    )
    library = LibraryTable(
        owned=owned,
        total_min=lib.total_min[keep_lib][perm],
        twoweek_min=lib.twoweek_min[keep_lib][perm],
    )
    gr = dataset.groups
    member_user = gr.members.indices
    member_group = gr.members.row_ids()
    keep_m = np.isin(member_user, users)
    members, _ = CSRMatrix.from_pairs(
        member_group[keep_m],
        np.array(
            [index[int(x)] for x in member_user[keep_m]], dtype=np.int32
        ),
        gr.n_groups,
    )
    groups = GroupTable(
        group_type=gr.group_type,
        focus_game=gr.focus_game,
        members=members,
        n_users=len(users),
    )
    return SteamDataset(
        accounts=accounts,
        friends=friends,
        groups=groups,
        catalog=dataset.catalog,
        library=library,
        achievements=dataset.achievements,
    )


@pytest.fixture(scope="module")
def shards(small_dataset):
    n = small_dataset.n_users
    left = np.arange(0, n // 2)
    right = np.arange(n // 2, n)
    return (
        _slice_dataset(small_dataset, left),
        _slice_dataset(small_dataset, right),
    )


class TestMergeDatasets:
    def test_accounts_recovered(self, shards, small_dataset):
        merged = merge_datasets(list(shards))
        assert merged.n_users == small_dataset.n_users
        assert np.array_equal(
            merged.accounts.id_offset, small_dataset.accounts.id_offset
        )
        assert np.array_equal(
            merged.accounts.created_day, small_dataset.accounts.created_day
        )

    def test_country_reporting_preserved(self, shards, small_dataset):
        merged = merge_datasets(list(shards))
        assert int((merged.accounts.country >= 0).sum()) == int(
            (small_dataset.accounts.country >= 0).sum()
        )

    def test_libraries_exact(self, shards, small_dataset):
        merged = merge_datasets(list(shards))
        assert np.array_equal(
            merged.owned_counts(), small_dataset.owned_counts()
        )
        assert (
            merged.library.user_total_min().sum()
            == small_dataset.library.user_total_min().sum()
        )

    def test_intra_shard_edges_survive(self, shards, small_dataset):
        merged = merge_datasets(list(shards))
        # Cross-shard edges are lost (each shard only resolved its own
        # accounts) — the merge keeps exactly the intra-shard ones.
        expected = sum(s.friends.n_edges for s in shards)
        assert merged.friends.n_edges == expected
        assert merged.friends.n_edges < small_dataset.friends.n_edges

    def test_memberships_exact(self, shards, small_dataset):
        merged = merge_datasets(list(shards))
        assert merged.groups.members.nnz == small_dataset.groups.members.nnz

    def test_single_shard_passthrough(self, shards):
        assert merge_datasets([shards[0]]) is shards[0]

    def test_rejects_overlapping_shards(self, shards):
        with pytest.raises(ValueError):
            merge_datasets([shards[0], shards[0]])

    def test_rejects_mismatched_catalogs(self, shards, small_dataset):
        import copy

        other = dataclasses.replace(
            shards[1],
            catalog=dataclasses.replace(
                small_dataset.catalog,
                appid=small_dataset.catalog.appid + 2,
            ),
        )
        with pytest.raises(ValueError):
            merge_datasets([shards[0], other])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_datasets([])

"""Plain-text dataset exports."""

import csv
import gzip
import json

import numpy as np
import pytest

from repro.store.export import EXPORT_FILES, export_dataset


@pytest.fixture(scope="module")
def exported(small_dataset, tmp_path_factory):
    outdir = tmp_path_factory.mktemp("export")
    return export_dataset(small_dataset, outdir), small_dataset


class TestExport:
    def test_all_files_written(self, exported):
        outdir, _ = exported
        for name in EXPORT_FILES:
            assert (outdir / name).exists(), name

    def test_players_complete(self, exported):
        outdir, dataset = exported
        with gzip.open(outdir / "players.jsonl.gz", "rt") as fh:
            rows = [json.loads(line) for line in fh]
        assert len(rows) == dataset.n_users
        reported = sum("country" in row for row in rows)
        assert reported == int(np.sum(dataset.accounts.country >= 0))

    def test_friends_edge_count(self, exported):
        outdir, dataset = exported
        with gzip.open(outdir / "friends.jsonl.gz", "rt") as fh:
            rows = [json.loads(line) for line in fh]
        assert len(rows) == dataset.friends.n_edges
        # Pre-epoch edges carry no "since".
        epoch = dataset.meta.friend_ts_epoch_day
        dated = sum("since" in row for row in rows)
        assert dated == int(np.sum(dataset.friends.day >= epoch))

    def test_games_csv_parses(self, exported):
        outdir, dataset = exported
        with open(outdir / "games.csv", encoding="utf-8") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == dataset.n_products
        assert any("Action" in row["genres"] for row in rows)
        prices = [float(row["price_usd"]) for row in rows]
        assert min(prices) == 0.0

    def test_libraries_minutes_roundtrip(self, exported):
        outdir, dataset = exported
        total = 0
        users = 0
        with gzip.open(outdir / "libraries.jsonl.gz", "rt") as fh:
            for line in fh:
                row = json.loads(line)
                users += 1
                total += sum(g["minutes"] for g in row["games"])
        assert users == int(np.sum(dataset.owned_counts() > 0))
        assert total == int(dataset.library.user_total_min().sum())

    def test_groups_membership_roundtrip(self, exported):
        outdir, dataset = exported
        members = 0
        with gzip.open(outdir / "groups.jsonl.gz", "rt") as fh:
            for line in fh:
                members += len(json.loads(line)["members"])
        assert members == dataset.groups.members.nnz

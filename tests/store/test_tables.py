"""Columnar tables and CSR encodings."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.store.tables import (
    AchievementTable,
    CSRMatrix,
    FriendTable,
    GroupType,
    LibraryTable,
)


class TestCSRMatrix:
    def test_from_pairs_roundtrip(self):
        rows = np.array([2, 0, 1, 0, 2, 2])
        cols = np.array([5, 1, 7, 3, 2, 9])
        csr, order = CSRMatrix.from_pairs(rows, cols, 4)
        assert csr.n_rows == 4
        assert csr.nnz == 6
        assert sorted(csr.row(0).tolist()) == [1, 3]
        assert csr.row(1).tolist() == [7]
        assert sorted(csr.row(2).tolist()) == [2, 5, 9]
        assert csr.row(3).tolist() == []
        # The order permutation aligns parallel data.
        data = np.arange(6)
        assert np.array_equal(
            data[order][csr.row_slice(1)], np.array([2])
        )

    def test_counts_and_row_ids(self):
        csr, _ = CSRMatrix.from_pairs(
            np.array([0, 0, 2]), np.array([1, 2, 3]), 3
        )
        assert csr.counts().tolist() == [2, 0, 1]
        assert csr.row_ids().tolist() == [0, 0, 2]

    def test_transpose(self):
        csr, _ = CSRMatrix.from_pairs(
            np.array([0, 0, 1]), np.array([2, 0, 2]), 2
        )
        t = csr.transpose(3)
        assert t.n_rows == 3
        assert sorted(t.row(2).tolist()) == [0, 1]
        assert t.row(0).tolist() == [0]
        assert t.row(1).tolist() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            CSRMatrix(indptr=np.array([1, 2]), indices=np.array([0]))
        with pytest.raises(ValueError):
            CSRMatrix(indptr=np.array([0, 2, 1]), indices=np.array([0, 1]))

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.integers(min_value=0, max_value=19),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=50)
    def test_from_pairs_preserves_multiset(self, pairs):
        rows = np.array([p[0] for p in pairs], dtype=np.int64)
        cols = np.array([p[1] for p in pairs], dtype=np.int64)
        csr, _ = CSRMatrix.from_pairs(rows, cols, 10)
        rebuilt = sorted(zip(csr.row_ids().tolist(), csr.indices.tolist()))
        assert rebuilt == sorted(pairs)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.integers(min_value=0, max_value=9),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=50)
    def test_double_transpose_identity(self, pairs):
        rows = np.array([p[0] for p in pairs], dtype=np.int64)
        cols = np.array([p[1] for p in pairs], dtype=np.int64)
        csr, _ = CSRMatrix.from_pairs(rows, cols, 10)
        back = csr.transpose(10).transpose(10)
        a = sorted(zip(csr.row_ids().tolist(), csr.indices.tolist()))
        b = sorted(zip(back.row_ids().tolist(), back.indices.tolist()))
        assert a == b


class TestFriendTable:
    def _table(self):
        return FriendTable(
            u=np.array([0, 0, 1]),
            v=np.array([1, 2, 3]),
            day=np.array([10, 20, 30]),
            n_users=5,
        )

    def test_degrees(self):
        deg = self._table().degrees()
        assert deg.tolist() == [2, 2, 1, 1, 0]

    def test_adjacency_symmetric(self):
        table = self._table()
        adj, edge_ids = table.adjacency()
        assert adj.nnz == 2 * table.n_edges
        assert sorted(adj.row(0).tolist()) == [1, 2]
        assert sorted(adj.row(1).tolist()) == [0, 3]

    def test_adjacency_edge_days(self):
        table = self._table()
        adj, edge_ids = table.adjacency()
        sl = adj.row_slice(3)
        assert table.day[edge_ids[sl]].tolist() == [30]

    def test_rejects_non_canonical(self):
        with pytest.raises(ValueError):
            FriendTable(
                u=np.array([2]), v=np.array([1]), day=np.array([0]), n_users=3
            )


class TestLibraryTable:
    def _lib(self):
        owned, _ = CSRMatrix.from_pairs(
            np.array([0, 0, 2]), np.array([10, 11, 10]), 3
        )
        return LibraryTable(
            owned=owned,
            total_min=np.array([120, 0, 30]),
            twoweek_min=np.array([60, 0, 0]),
        )

    def test_counts(self):
        lib = self._lib()
        assert lib.owned_counts().tolist() == [2, 0, 1]
        assert lib.played_counts().tolist() == [1, 0, 1]

    def test_user_sums(self):
        lib = self._lib()
        assert lib.user_total_min().tolist() == [120, 0, 30]
        assert lib.user_twoweek_min().tolist() == [60, 0, 0]

    def test_user_value(self):
        lib = self._lib()
        price = np.zeros(20, dtype=np.int64)
        price[10] = 999
        price[11] = 1999
        assert lib.user_value_cents(price).tolist() == [2998, 0, 999]

    def test_alignment_validation(self):
        owned, _ = CSRMatrix.from_pairs(np.array([0]), np.array([1]), 1)
        with pytest.raises(ValueError):
            LibraryTable(
                owned=owned,
                total_min=np.array([1, 2]),
                twoweek_min=np.array([0]),
            )


class TestReduceatEmptySegments:
    """``np.add.reduceat`` empty-segment regression for every
    aggregation built on it.

    An empty CSR row (``indptr[i] == indptr[i+1]``) must aggregate to
    zero (or nan for means) — the naive reduceat instead returns
    ``values[indptr[i]]``, a neighboring row's element.  Each case
    hand-builds ``indptr`` with repeated offsets so the stolen-neighbor
    value would be nonzero and the bug visible.
    """

    def _sandwich_lib(self):
        # User 1 owns nothing, wedged between owners; the naive bug
        # would report user 2's first entry (playtime 999) for user 1.
        owned, _ = CSRMatrix.from_pairs(
            np.array([0, 2, 2]), np.array([4, 5, 6]), 4
        )
        return LibraryTable(
            owned=owned,
            total_min=np.array([100, 999, 0]),
            twoweek_min=np.array([50, 42, 0]),
        )

    def test_row_sums_skip_empty_users(self):
        lib = self._sandwich_lib()
        assert lib.user_total_min().tolist() == [100, 0, 999, 0]
        assert lib.user_twoweek_min().tolist() == [50, 0, 42, 0]

    def test_played_counts_skip_empty_users(self):
        lib = self._sandwich_lib()
        assert lib.played_counts().tolist() == [1, 0, 1, 0]

    def test_user_value_skips_empty_users(self):
        lib = self._sandwich_lib()
        price = np.zeros(10, dtype=np.int64)
        price[4] = 100
        price[5] = 2000
        price[6] = 300
        assert lib.user_value_cents(price).tolist() == [100, 0, 2300, 0]

    def test_mean_completion_nan_for_empty_products(self):
        # Product 1 has no achievements; the naive reduceat would
        # average product 2's first rate (0.8) into it.
        table = AchievementTable(
            count=np.array([2, 0, 1, 0]),
            indptr=np.array([0, 2, 2, 3, 3]),
            rates=np.array([0.2, 0.4, 0.8], dtype=np.float32),
        )
        means = table.mean_completion()
        assert means[0] == pytest.approx(0.3)
        assert np.isnan(means[1])
        assert means[2] == pytest.approx(0.8)
        assert np.isnan(means[3])


class TestGroupType:
    def test_labels_roundtrip(self):
        from repro.store.tables import GROUP_TYPE_BY_LABEL

        for gt in GroupType:
            assert GROUP_TYPE_BY_LABEL[gt.label] == gt

    def test_paper_labels_present(self):
        labels = {gt.label for gt in GroupType}
        assert labels == {
            "Single Game",
            "Game Server",
            "Gaming Community",
            "Publisher",
            "Special Interest",
            "Steam",
        }

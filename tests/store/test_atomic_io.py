"""Atomic-write discipline (DESIGN.md §9): torn files must be impossible.

Covers the shared :mod:`repro.fsutil` primitive, the dataset writer,
and the observability snapshot writer — including the brutal case, a
``SIGKILL`` landing mid-write in a subprocess.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.fsutil import atomic_write_bytes, atomic_write_text, atomic_writer
from repro.obs import Obs
from repro.store.io import load_dataset, save_dataset


def _no_tmp_leftovers(directory: Path) -> bool:
    return not [p for p in directory.iterdir() if ".tmp." in p.name]


class TestAtomicWriter:
    def test_roundtrip_and_cleanup(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, '{"a": 1}')
        assert json.loads(target.read_text()) == {"a": 1}
        atomic_write_bytes(target, b'{"a": 2}')
        assert json.loads(target.read_text()) == {"a": 2}
        assert _no_tmp_leftovers(tmp_path)

    def test_failure_preserves_previous_content(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("previous")
        with pytest.raises(RuntimeError):
            with atomic_writer(target, "w") as handle:
                handle.write("half-writ")
                raise RuntimeError("crash mid-write")
        assert target.read_text() == "previous"
        assert _no_tmp_leftovers(tmp_path)

    def test_failure_before_first_write_leaves_no_target(self, tmp_path):
        target = tmp_path / "never.json"
        with pytest.raises(RuntimeError):
            with atomic_writer(target, "w"):
                raise RuntimeError("boom")
        assert not target.exists()
        assert _no_tmp_leftovers(tmp_path)


class TestDatasetWriter:
    def test_failed_save_preserves_previous_dataset(
        self, tmp_path, small_dataset, monkeypatch
    ):
        target = tmp_path / "world.npz"
        save_dataset(small_dataset, target)
        good = target.read_bytes()

        def explode(*args, **kwargs):
            raise OSError("disk on fire")

        monkeypatch.setattr(np, "savez_compressed", explode)
        with pytest.raises(OSError):
            save_dataset(small_dataset, target)
        assert target.read_bytes() == good
        reloaded = load_dataset(target)
        assert reloaded.fingerprint() == small_dataset.fingerprint()


class TestSnapshotWriter:
    def test_metrics_snapshot_written_atomically(self, tmp_path):
        obs = Obs()
        obs.counter("c", "help").inc()
        target = tmp_path / "metrics.json"
        obs.write(target)
        assert isinstance(json.loads(target.read_text()), dict)
        assert _no_tmp_leftovers(tmp_path)

    def test_kill_during_write_never_leaves_torn_snapshot(self, tmp_path):
        """SIGKILL a child that rewrites a snapshot in a tight loop; the
        published file must always parse, whatever instant the kill hit."""
        target = tmp_path / "metrics.json"
        script = (
            "import sys\n"
            "from repro.obs import Obs\n"
            "obs = Obs()\n"
            "counter = obs.counter('spin', 'busy loop')\n"
            "print('ready', flush=True)\n"
            "while True:\n"
            "    counter.inc()\n"
            f"    obs.write({str(target)!r})\n"
        )
        env = dict(os.environ)
        src = Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = f"{src}:{env.get('PYTHONPATH', '')}"
        child = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            env=env,
        )
        try:
            assert child.stdout.readline().strip() == b"ready"
            # Let it cycle through many write→fsync→rename iterations,
            # then kill at an arbitrary point of one.
            time.sleep(0.5)
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=10)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=10)
        assert target.exists(), "no snapshot ever published"
        snapshot = json.loads(target.read_text())
        assert snapshot["metrics"]["spin"]["series"][0]["value"] >= 1
        # The dangling temp file of the killed write (if any) must not
        # shadow or corrupt the published snapshot; the target itself
        # parsed, which is the guarantee.  Clean leftovers so later
        # assertions about the directory stay meaningful.
        for leftover in tmp_path.iterdir():
            if ".tmp." in leftover.name:
                leftover.unlink()
        assert _no_tmp_leftovers(tmp_path)

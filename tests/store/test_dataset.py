"""SteamDataset container invariants and aggregates."""

import datetime as dt

import numpy as np
import pytest

from repro import constants
from repro.store.dataset import SteamDataset
from repro.store.tables import Snapshot2Table


class TestValidation:
    def test_rejects_misaligned_friend_table(self, small_dataset):
        import dataclasses

        bad_friends = dataclasses.replace(
            small_dataset.friends, n_users=small_dataset.n_users + 1
        )
        with pytest.raises(ValueError):
            SteamDataset(
                accounts=small_dataset.accounts,
                friends=bad_friends,
                groups=small_dataset.groups,
                catalog=small_dataset.catalog,
                library=small_dataset.library,
            )

    def test_rejects_misaligned_snapshot2(self, small_dataset):
        bad = Snapshot2Table(
            owned=np.zeros(3, dtype=np.int64),
            played=np.zeros(3, dtype=np.int64),
            value_cents=np.zeros(3, dtype=np.int64),
            total_min=np.zeros(3, dtype=np.int64),
            twoweek_min=np.zeros(3, dtype=np.int64),
        )
        with pytest.raises(ValueError):
            SteamDataset(
                accounts=small_dataset.accounts,
                friends=small_dataset.friends,
                groups=small_dataset.groups,
                catalog=small_dataset.catalog,
                library=small_dataset.library,
                snapshot2=bad,
            )


class TestAggregates:
    def test_friend_counts_sum_to_twice_edges(self, small_dataset):
        assert (
            small_dataset.friend_counts().sum()
            == 2 * small_dataset.friends.n_edges
        )

    def test_owned_counts_sum_to_nnz(self, small_dataset):
        assert (
            small_dataset.owned_counts().sum()
            == small_dataset.library.owned.nnz
        )

    def test_played_le_owned(self, small_dataset):
        assert np.all(
            small_dataset.played_counts() <= small_dataset.owned_counts()
        )

    def test_twoweek_le_total(self, small_dataset):
        assert np.all(
            small_dataset.twoweek_playtime_hours()
            <= small_dataset.total_playtime_hours() + 1e-9
        )

    def test_market_value_nonnegative(self, small_dataset):
        assert small_dataset.market_value_dollars().min() >= 0

    def test_day_to_date(self, small_dataset):
        assert small_dataset.day_to_date(0) == constants.STEAM_LAUNCH
        assert small_dataset.day_to_date(365) == constants.STEAM_LAUNCH + dt.timedelta(days=365)

    def test_summary_keys(self, small_dataset):
        summary = small_dataset.summary()
        assert set(summary) == {
            "accounts",
            "friendships",
            "groups",
            "group_memberships",
            "owned_games",
            "playtime_years",
            "market_value_usd",
            "products",
        }


class TestFingerprintMemo:
    """fingerprint()/column_fingerprints() memoize; mutation paths must
    invalidate (the stale-memo regression of DESIGN.md §12)."""

    def _copy(self, dataset):
        import dataclasses

        lib = dataclasses.replace(
            dataset.library, total_min=dataset.library.total_min.copy()
        )
        return dataclasses.replace(dataset, library=lib)

    def test_memo_serves_stale_identity_without_invalidate(
        self, small_dataset
    ):
        ds = self._copy(small_dataset)
        before = ds.fingerprint()
        ds.library.total_min[0] += 1
        # The memo is the documented hazard: identity is stale until
        # the mutator announces itself.
        assert ds.fingerprint() == before

    def test_invalidate_refreshes_both_memos(self, small_dataset):
        ds = self._copy(small_dataset)
        before_fp = ds.fingerprint()
        before_cols = dict(ds.column_fingerprints())
        ds.library.total_min[0] += 1
        ds.invalidate_fingerprint()
        after_cols = ds.column_fingerprints()
        assert ds.fingerprint() != before_fp
        changed = {
            k for k in before_cols if before_cols[k] != after_cols[k]
        }
        assert changed == {"lib.total_min"}

    def test_merge_path_returns_fresh_identity(self, small_dataset):
        """apply_user_delta hands back an invalidated dataset even
        though it touched arrays after construction."""
        from repro.store.merge import UserDeltaBatch, apply_user_delta

        new_offset = int(small_dataset.accounts.id_offset.max()) + 7
        batch = UserDeltaBatch(
            offsets=np.array([new_offset], dtype=np.int64),
            created_day=np.array([500], dtype=np.int32),
            countries=[None],
            city=np.array([-1], dtype=np.int64),
        )
        merged = apply_user_delta(
            small_dataset, batch, meta=small_dataset.meta
        )
        assert merged._fingerprint is None
        assert merged._column_fps is None
        assert merged.fingerprint() != small_dataset.fingerprint()

"""SteamDataset container invariants and aggregates."""

import datetime as dt

import numpy as np
import pytest

from repro import constants
from repro.store.dataset import SteamDataset
from repro.store.tables import Snapshot2Table


class TestValidation:
    def test_rejects_misaligned_friend_table(self, small_dataset):
        import dataclasses

        bad_friends = dataclasses.replace(
            small_dataset.friends, n_users=small_dataset.n_users + 1
        )
        with pytest.raises(ValueError):
            SteamDataset(
                accounts=small_dataset.accounts,
                friends=bad_friends,
                groups=small_dataset.groups,
                catalog=small_dataset.catalog,
                library=small_dataset.library,
            )

    def test_rejects_misaligned_snapshot2(self, small_dataset):
        bad = Snapshot2Table(
            owned=np.zeros(3, dtype=np.int64),
            played=np.zeros(3, dtype=np.int64),
            value_cents=np.zeros(3, dtype=np.int64),
            total_min=np.zeros(3, dtype=np.int64),
            twoweek_min=np.zeros(3, dtype=np.int64),
        )
        with pytest.raises(ValueError):
            SteamDataset(
                accounts=small_dataset.accounts,
                friends=small_dataset.friends,
                groups=small_dataset.groups,
                catalog=small_dataset.catalog,
                library=small_dataset.library,
                snapshot2=bad,
            )


class TestAggregates:
    def test_friend_counts_sum_to_twice_edges(self, small_dataset):
        assert (
            small_dataset.friend_counts().sum()
            == 2 * small_dataset.friends.n_edges
        )

    def test_owned_counts_sum_to_nnz(self, small_dataset):
        assert (
            small_dataset.owned_counts().sum()
            == small_dataset.library.owned.nnz
        )

    def test_played_le_owned(self, small_dataset):
        assert np.all(
            small_dataset.played_counts() <= small_dataset.owned_counts()
        )

    def test_twoweek_le_total(self, small_dataset):
        assert np.all(
            small_dataset.twoweek_playtime_hours()
            <= small_dataset.total_playtime_hours() + 1e-9
        )

    def test_market_value_nonnegative(self, small_dataset):
        assert small_dataset.market_value_dollars().min() >= 0

    def test_day_to_date(self, small_dataset):
        assert small_dataset.day_to_date(0) == constants.STEAM_LAUNCH
        assert small_dataset.day_to_date(365) == constants.STEAM_LAUNCH + dt.timedelta(days=365)

    def test_summary_keys(self, small_dataset):
        summary = small_dataset.summary()
        assert set(summary) == {
            "accounts",
            "friendships",
            "groups",
            "group_memberships",
            "owned_games",
            "playtime_years",
            "market_value_usd",
            "products",
        }

"""Columnar mmap directory format: round-trips and worker identity."""

import json
import multiprocessing

import numpy as np
import pytest

from repro.store.io import (
    DatasetIntegrityError,
    load_any,
    load_dataset_dir,
    save_dataset,
    save_dataset_dir,
)


class TestDirRoundTrip:
    def test_fingerprint_identical(self, small_dataset, tmp_path):
        path = save_dataset_dir(small_dataset, tmp_path / "world.cols")
        loaded = load_dataset_dir(path)
        assert loaded.fingerprint() == small_dataset.fingerprint()

    def test_mmap_and_inmemory_identical(self, small_dataset, tmp_path):
        path = save_dataset_dir(small_dataset, tmp_path / "world.cols")
        mapped = load_dataset_dir(path, mmap=True)
        copied = load_dataset_dir(path, mmap=False)
        assert mapped.fingerprint() == copied.fingerprint()
        # mmap'd columns are backed by the files, not private copies.
        assert isinstance(mapped.accounts.id_offset, np.memmap)
        assert not isinstance(copied.accounts.id_offset, np.memmap)

    def test_verify_passes_on_clean_dir(self, small_dataset, tmp_path):
        path = save_dataset_dir(small_dataset, tmp_path / "world.cols")
        loaded = load_dataset_dir(path, mmap=False, verify=True)
        assert loaded.n_users == small_dataset.n_users

    def test_overwrite_existing_directory(self, small_dataset, tmp_path):
        path = tmp_path / "world.cols"
        save_dataset_dir(small_dataset, path)
        save_dataset_dir(small_dataset, path)
        assert (
            load_dataset_dir(path).fingerprint()
            == small_dataset.fingerprint()
        )

    def test_load_any_picks_format(self, small_dataset, tmp_path):
        as_dir = save_dataset_dir(small_dataset, tmp_path / "world.cols")
        as_npz = save_dataset(small_dataset, tmp_path / "world.npz")
        want = small_dataset.fingerprint()
        assert load_any(as_dir).fingerprint() == want
        assert load_any(as_npz).fingerprint() == want


class TestDirIntegrity:
    def test_missing_column_named(self, small_dataset, tmp_path):
        path = save_dataset_dir(small_dataset, tmp_path / "world.cols")
        (path / "fr.u.npy").unlink()
        with pytest.raises(DatasetIntegrityError, match="fr.u"):
            load_dataset_dir(path)

    def test_corrupt_column_fails_verify(self, small_dataset, tmp_path):
        path = save_dataset_dir(small_dataset, tmp_path / "world.cols")
        loaded = load_dataset_dir(path, mmap=False, verify=True)
        arr = np.load(path / "lib.total_min.npy")
        arr[0] += 1
        np.save(path / "lib.total_min.npy", arr)
        with pytest.raises(DatasetIntegrityError, match="lib.total_min"):
            corrupted = load_dataset_dir(path, mmap=False, verify=True)
            corrupted.library.total_min  # noqa: B018 — force the read
        assert loaded.n_users == small_dataset.n_users

    def test_future_version_rejected(self, small_dataset, tmp_path):
        path = save_dataset_dir(small_dataset, tmp_path / "world.cols")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format_version"] = 99
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(DatasetIntegrityError, match="format_version"):
            load_dataset_dir(path)

    def test_corrupt_manifest_rejected(self, small_dataset, tmp_path):
        path = save_dataset_dir(small_dataset, tmp_path / "world.cols")
        (path / "manifest.json").write_text("{not json")
        with pytest.raises(DatasetIntegrityError, match="manifest"):
            load_dataset_dir(path)


class TestWorkerByteIdentity:
    """jobs stays a pure acceleration knob with the mmap'd spill
    (DESIGN.md §8/§13): fork or spawn, any jobs count, byte-identical
    report."""

    @pytest.fixture(scope="class")
    def serial_render(self, small_world):
        from repro import SteamStudy

        study = SteamStudy(
            world=small_world, _dataset=small_world.dataset
        )
        report = study.run(table4_max_tail=4_000, jobs=1)
        return report.render(), report.render_figures()

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_spawn_workers_match_serial(
        self, small_world, serial_render, jobs, monkeypatch
    ):
        from repro import SteamStudy

        # Force the spawn branch (and with it the columnar mmap spill)
        # even on platforms where fork is available.
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        study = SteamStudy(
            world=small_world, _dataset=small_world.dataset
        )
        report = study.run(table4_max_tail=4_000, jobs=jobs)
        assert not study.last_engine_run.serial_fallback
        assert report.render() == serial_render[0]
        assert report.render_figures() == serial_render[1]

    def test_fork_workers_match_serial(
        self, small_world, serial_render
    ):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no fork")
        from repro import SteamStudy

        study = SteamStudy(
            world=small_world, _dataset=small_world.dataset
        )
        report = study.run(table4_max_tail=4_000, jobs=2)
        assert report.render() == serial_render[0]

    def test_analysis_on_mmap_dataset_matches(
        self, small_dataset, tmp_path
    ):
        from repro import SteamStudy

        path = save_dataset_dir(small_dataset, tmp_path / "world.cols")
        mapped = load_dataset_dir(path, mmap=True)
        a = SteamStudy.from_dataset(mapped).run(table4_max_tail=4_000)
        b = SteamStudy.from_dataset(small_dataset).run(
            table4_max_tail=4_000
        )
        assert a.render() == b.render()

"""Shared fixtures: session-scoped worlds at two scales.

Generating a world is ~100 ms per 10k accounts, so the suite shares one
small world (unit-level checks) and one medium world (statistical
checks with meaningful percentiles) across all tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SteamStudy, SteamWorld, WorldConfig
from repro.store.dataset import SteamDataset


@pytest.fixture(scope="session")
def small_world() -> SteamWorld:
    """5k accounts — fast, for structural/unit assertions."""
    return SteamWorld.generate(WorldConfig(n_users=5_000, seed=101))


@pytest.fixture(scope="session")
def small_dataset(small_world) -> SteamDataset:
    return small_world.dataset


@pytest.fixture(scope="session")
def world() -> SteamWorld:
    """60k accounts — for statistical/calibration assertions."""
    return SteamWorld.generate(WorldConfig(n_users=60_000, seed=202))


@pytest.fixture(scope="session")
def dataset(world) -> SteamDataset:
    return world.dataset


@pytest.fixture(scope="session")
def crawled_dataset(small_world) -> SteamDataset:
    """The small world re-collected through the simulated API."""
    study = SteamStudy(world=small_world, _dataset=small_world.dataset)
    return study.crawl().dataset


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)

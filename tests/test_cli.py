"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.users == 100_000
        assert args.seed == 1603


class TestCommands:
    def test_generate_writes_dataset(self, tmp_path, capsys):
        out = tmp_path / "world.npz"
        code = main(
            ["generate", "--users", "2000", "--seed", "3", "--output", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "generated 2,000 accounts" in capsys.readouterr().out

    def test_analyze_saved_dataset(self, tmp_path, capsys):
        data = tmp_path / "world.npz"
        main(["generate", "--users", "2000", "--seed", "3", "--output", str(data)])
        report = tmp_path / "report.txt"
        code = main(
            [
                "analyze",
                "--dataset",
                str(data),
                "--skip-table4",
                "--output",
                str(report),
            ]
        )
        assert code == 0
        text = report.read_text()
        assert "Table 3" in text
        assert "Figure 10" in text

    def test_analyze_prints_to_stdout(self, capsys):
        code = main(
            ["analyze", "--users", "2000", "--seed", "3", "--skip-table4"]
        )
        assert code == 0
        assert "Table 1" in capsys.readouterr().out

    def test_crawl_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "crawl.npz"
        code = main(
            ["crawl", "--users", "1500", "--seed", "3", "--output", str(out)]
        )
        assert code == 0
        assert out.exists()
        from repro.store.io import load_dataset

        dataset = load_dataset(out)
        assert dataset.n_users == 1500

    def test_export_command(self, tmp_path, capsys):
        outdir = tmp_path / "dump"
        code = main(
            [
                "export",
                "--users",
                "1500",
                "--seed",
                "3",
                "--outdir",
                str(outdir),
            ]
        )
        assert code == 0
        assert (outdir / "players.jsonl.gz").exists()
        assert (outdir / "games.csv").exists()

    def test_figures_command(self, tmp_path, capsys):
        outdir = tmp_path / "figs"
        code = main(
            [
                "figures",
                "--users",
                "1500",
                "--seed",
                "3",
                "--outdir",
                str(outdir),
            ]
        )
        assert code == 0
        assert (outdir / "fig06_playtime_cdf.csv").exists()

    def test_analyze_with_ascii_figures(self, capsys):
        code = main(
            [
                "analyze",
                "--users",
                "2000",
                "--seed",
                "3",
                "--skip-table4",
                "--figures",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "log-log pdf" in out

    def test_crawl_over_http(self, tmp_path, capsys):
        out = tmp_path / "crawl_http.npz"
        code = main(
            [
                "crawl",
                "--users",
                "1200",
                "--seed",
                "3",
                "--http",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        assert "HTTP transport" in capsys.readouterr().out


class TestObservability:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert (
            capsys.readouterr().out.strip()
            == f"condensing-steam {__version__}"
        )

    def test_crawl_metrics_out(self, tmp_path, capsys):
        import json

        out = tmp_path / "crawl.npz"
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "crawl",
                "--users",
                "1200",
                "--seed",
                "3",
                "--output",
                str(out),
                "--metrics-out",
                str(metrics),
            ]
        )
        assert code == 0
        assert "metrics snapshot written" in capsys.readouterr().out
        snap = json.loads(metrics.read_text())
        assert snap["schema_version"] == 1
        assert "steamapi_requests" in snap["metrics"]
        assert "crawl" in snap["span_totals"]
        # generation was instrumented too (same obs scope)
        assert "generate" in snap["span_totals"]

    def test_generate_metrics_out(self, tmp_path):
        import json

        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "generate",
                "--users",
                "1200",
                "--seed",
                "3",
                "--output",
                str(tmp_path / "w.npz"),
                "--metrics-out",
                str(metrics),
            ]
        )
        assert code == 0
        snap = json.loads(metrics.read_text())
        assert "generate:ownership" in snap["span_totals"]

    def test_obs_summarize(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        main(
            [
                "crawl",
                "--users",
                "1200",
                "--seed",
                "3",
                "--output",
                str(tmp_path / "c.npz"),
                "--metrics-out",
                str(metrics),
            ]
        )
        capsys.readouterr()
        code = main(["obs", "summarize", str(metrics)])
        assert code == 0
        out = capsys.readouterr().out
        assert "== metrics ==" in out
        assert "steamapi_requests" in out
        assert "== spans ==" in out

    def test_obs_summarize_rejects_non_snapshot(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        code = main(["obs", "summarize", str(bad)])
        assert code == 1
        assert "not a metrics snapshot" in capsys.readouterr().out

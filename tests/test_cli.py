"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.users == 100_000
        assert args.seed == 1603


class TestCommands:
    def test_generate_writes_dataset(self, tmp_path, capsys):
        out = tmp_path / "world.npz"
        code = main(
            ["generate", "--users", "2000", "--seed", "3", "--output", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "generated 2,000 accounts" in capsys.readouterr().out

    def test_analyze_saved_dataset(self, tmp_path, capsys):
        data = tmp_path / "world.npz"
        main(["generate", "--users", "2000", "--seed", "3", "--output", str(data)])
        report = tmp_path / "report.txt"
        code = main(
            [
                "analyze",
                "--dataset",
                str(data),
                "--skip-table4",
                "--output",
                str(report),
            ]
        )
        assert code == 0
        text = report.read_text()
        assert "Table 3" in text
        assert "Figure 10" in text

    def test_analyze_prints_to_stdout(self, capsys):
        code = main(
            ["analyze", "--users", "2000", "--seed", "3", "--skip-table4"]
        )
        assert code == 0
        assert "Table 1" in capsys.readouterr().out

    def test_crawl_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "crawl.npz"
        code = main(
            ["crawl", "--users", "1500", "--seed", "3", "--output", str(out)]
        )
        assert code == 0
        assert out.exists()
        from repro.store.io import load_dataset

        dataset = load_dataset(out)
        assert dataset.n_users == 1500

    def test_evolve_writes_deltas_and_dataset(self, tmp_path, capsys):
        out = tmp_path / "ev"
        code = main(
            [
                "evolve",
                "--users",
                "1500",
                "--seed",
                "5",
                "--steps",
                "2",
                "--out-dir",
                str(out),
            ]
        )
        assert code == 0
        assert (out / "step_1.delta.json").exists()
        assert (out / "step_2.delta.json").exists()
        assert (out / "evolved.npz").exists()
        stdout = capsys.readouterr().out
        assert "step 1" in stdout and "step 2" in stdout

        from repro.delta.model import WorldDelta
        from repro.store.io import load_dataset

        delta = WorldDelta.load(out / "step_1.delta.json")
        assert delta.step == 1
        evolved = load_dataset(out / "evolved.npz")
        assert evolved.n_users >= 1500
        # The evolved dataset is analyzable as-is.
        code = main(
            [
                "analyze",
                "--dataset",
                str(out / "evolved.npz"),
                "--skip-table4",
            ]
        )
        assert code == 0

    def test_export_command(self, tmp_path, capsys):
        outdir = tmp_path / "dump"
        code = main(
            [
                "export",
                "--users",
                "1500",
                "--seed",
                "3",
                "--outdir",
                str(outdir),
            ]
        )
        assert code == 0
        assert (outdir / "players.jsonl.gz").exists()
        assert (outdir / "games.csv").exists()

    def test_figures_command(self, tmp_path, capsys):
        outdir = tmp_path / "figs"
        # 2500 users keeps the 0.5% week panel comfortably non-empty
        # (a ~7-user panel at 1500 can sample only inactive players).
        code = main(
            [
                "figures",
                "--users",
                "2500",
                "--seed",
                "3",
                "--outdir",
                str(outdir),
            ]
        )
        assert code == 0
        assert (outdir / "fig06_playtime_cdf.csv").exists()

    def test_analyze_with_ascii_figures(self, capsys):
        code = main(
            [
                "analyze",
                "--users",
                "2000",
                "--seed",
                "3",
                "--skip-table4",
                "--figures",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "log-log pdf" in out

    def test_crawl_over_http(self, tmp_path, capsys):
        out = tmp_path / "crawl_http.npz"
        code = main(
            [
                "crawl",
                "--users",
                "1200",
                "--seed",
                "3",
                "--http",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        assert "HTTP transport" in capsys.readouterr().out


class TestObservability:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert (
            capsys.readouterr().out.strip()
            == f"condensing-steam {__version__}"
        )

    def test_crawl_metrics_out(self, tmp_path, capsys):
        import json

        out = tmp_path / "crawl.npz"
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "crawl",
                "--users",
                "1200",
                "--seed",
                "3",
                "--output",
                str(out),
                "--metrics-out",
                str(metrics),
            ]
        )
        assert code == 0
        assert "metrics snapshot written" in capsys.readouterr().out
        snap = json.loads(metrics.read_text())
        assert snap["schema_version"] == 2
        # run_id is the seed-derived trace id; joinable with traces.
        from repro.obs import TraceContext

        assert snap["run_id"] == TraceContext.new(seed=3).trace_id
        assert "steamapi_requests" in snap["metrics"]
        assert "crawl" in snap["span_totals"]
        # generation was instrumented too (same obs scope)
        assert "generate" in snap["span_totals"]

    def test_generate_metrics_out(self, tmp_path):
        import json

        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "generate",
                "--users",
                "1200",
                "--seed",
                "3",
                "--output",
                str(tmp_path / "w.npz"),
                "--metrics-out",
                str(metrics),
            ]
        )
        assert code == 0
        snap = json.loads(metrics.read_text())
        assert "generate:ownership" in snap["span_totals"]

    def test_obs_summarize(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        main(
            [
                "crawl",
                "--users",
                "1200",
                "--seed",
                "3",
                "--output",
                str(tmp_path / "c.npz"),
                "--metrics-out",
                str(metrics),
            ]
        )
        capsys.readouterr()
        code = main(["obs", "summarize", str(metrics)])
        assert code == 0
        out = capsys.readouterr().out
        assert "== metrics ==" in out
        assert "steamapi_requests" in out
        assert "== spans ==" in out

    def test_obs_summarize_rejects_non_snapshot(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        code = main(["obs", "summarize", str(bad)])
        assert code == 1
        assert "not a metrics snapshot" in capsys.readouterr().out


class TestTracingCli:
    def test_pipeline_trace_out_single_merged_trace(
        self, tmp_path, capsys
    ):
        import json

        from repro.obs import TraceContext

        trace_path = tmp_path / "run.trace.json"
        code = main(
            [
                "pipeline",
                "--users",
                "1200",
                "--seed",
                "31",
                "--skip-table4",
                "--workdir",
                str(tmp_path / "wd"),
                "--trace-out",
                str(trace_path),
            ]
        )
        assert code == 0
        assert "chrome trace written to" in capsys.readouterr().out
        doc = json.loads(trace_path.read_text())
        # One merged trace: supervisor, crawler, HTTP server, engine.
        assert doc["otherData"]["trace_id"] == TraceContext.new(
            seed=31
        ).trace_id
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in events}
        assert "pipeline" in names
        assert "crawl" in names
        assert "phase:profiles" in names
        assert any(n.startswith("http:") for n in names)
        assert "analyze:summary" in names
        ids = [e["args"]["span_id"] for e in events]
        assert len(set(ids)) == len(ids)

    def test_analyze_profile_report(self, tmp_path, capsys):
        import json

        report = tmp_path / "profile.json"
        code = main(
            [
                "analyze",
                "--users",
                "2000",
                "--seed",
                "3",
                "--skip-table4",
                "--profile",
                str(report),
            ]
        )
        assert code == 0
        assert "profile report written to" in capsys.readouterr().out
        doc = json.loads(report.read_text())
        assert doc["profiles"]
        some_stage = next(iter(doc["profiles"].values()))
        assert {"func", "ncalls", "tottime", "cumtime"} <= set(
            some_stage[0]
        )

    def test_metrics_run_id_joins_ambient_trace(
        self, tmp_path, capsys, monkeypatch
    ):
        import json

        from repro.obs import TRACE_ENV_VAR, TraceContext

        ambient = TraceContext.new(seed=99)
        monkeypatch.setenv(TRACE_ENV_VAR, ambient.value())
        metrics = tmp_path / "m.json"
        code = main(
            [
                "generate",
                "--users",
                "1200",
                "--seed",
                "3",
                "--output",
                str(tmp_path / "w.npz"),
                "--metrics-out",
                str(metrics),
            ]
        )
        assert code == 0
        snap = json.loads(metrics.read_text())
        # Joined the exported trace instead of rooting a fresh one.
        assert snap["run_id"] == ambient.trace_id


class TestBenchDiffCli:
    @staticmethod
    def _bench_doc(seconds):
        return {
            "schema_version": 1,
            "benchmark": "analysis",
            "git_rev": "abc1234",
            "world": {"seed": 31, "n_users": 8000},
            "metrics": [
                {
                    "name": "analyze_seconds",
                    "value": seconds,
                    "unit": "s",
                }
            ],
        }

    def _write(self, directory, seconds):
        import json

        directory.mkdir(parents=True, exist_ok=True)
        path = directory / "BENCH_analysis.json"
        path.write_text(json.dumps(self._bench_doc(seconds)))
        return path

    def test_green_on_identical_results(self, tmp_path, capsys):
        self._write(tmp_path / "new", 1.0)
        self._write(tmp_path / "base", 1.0)
        code = main(
            [
                "obs",
                "bench-diff",
                str(tmp_path / "new"),
                str(tmp_path / "base"),
            ]
        )
        assert code == 0
        assert "[ok ]" in capsys.readouterr().out

    def test_exits_nonzero_on_2x_regression(self, tmp_path, capsys):
        self._write(tmp_path / "new", 2.0)
        self._write(tmp_path / "base", 1.0)
        code = main(
            [
                "obs",
                "bench-diff",
                str(tmp_path / "new"),
                str(tmp_path / "base"),
            ]
        )
        assert code == 1
        assert "[REG]" in capsys.readouterr().out

    def test_thresholds_can_loosen_the_gate(self, tmp_path):
        import json

        self._write(tmp_path / "new", 2.0)
        self._write(tmp_path / "base", 1.0)
        thresholds = tmp_path / "thresholds.json"
        thresholds.write_text(
            json.dumps({"analyze_seconds": {"max_ratio": 3.0}})
        )
        code = main(
            [
                "obs",
                "bench-diff",
                str(tmp_path / "new"),
                str(tmp_path / "base"),
                "--thresholds",
                str(thresholds),
            ]
        )
        assert code == 0

    def test_errors_exit_two(self, tmp_path, capsys):
        (tmp_path / "empty").mkdir()
        code = main(
            [
                "obs",
                "bench-diff",
                str(tmp_path / "empty"),
                str(tmp_path / "empty"),
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().out

"""Smoke-run every example script at tiny scale."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, argv: list[str], monkeypatch, capsys) -> str:
    monkeypatch.setattr(sys, "argv", [script] + argv)
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        out = _run("quickstart.py", ["3000", "5"], monkeypatch, capsys)
        assert "Table 3" in out
        assert "Figure 11" in out

    def test_crawl_measurement(self, monkeypatch, capsys):
        out = _run("crawl_measurement.py", ["1200"], monkeypatch, capsys)
        assert "reconstruction check [friendships]: OK" in out
        assert "MISMATCH" not in out

    def test_gamer_archetypes(self, monkeypatch, capsys):
        out = _run("gamer_archetypes.py", ["20000"], monkeypatch, capsys)
        assert "The modest majority" in out
        assert "Idlers" in out

    def test_homophily_study(self, monkeypatch, capsys):
        out = _run("homophily_study.py", ["8000"], monkeypatch, capsys)
        assert "calibrated world" in out
        assert "ablated world" in out

    def test_distribution_atlas(self, monkeypatch, capsys, tmp_path):
        out = _run(
            "distribution_atlas.py",
            ["8000", str(tmp_path)],
            monkeypatch,
            capsys,
        )
        assert "classification:" in out
        assert (tmp_path / "ccdf_friends.csv").exists()

    def test_network_structure(self, monkeypatch, capsys):
        out = _run("network_structure.py", ["8000"], monkeypatch, capsys)
        assert "small world: True" in out
        assert "friendships grow faster than users: True" in out

    def test_modern_api_gate(self, monkeypatch, capsys):
        out = _run("modern_api_gate.py", ["1500"], monkeypatch, capsys)
        assert "100.0%" in out
        assert "synthetic substitution" in out

    def test_achievement_hunters(self, monkeypatch, capsys):
        out = _run("achievement_hunters.py", ["15000"], monkeypatch, capsys)
        assert "confirmed: True" in out
        assert "example hunters" in out

    def test_sampling_bias(self, monkeypatch, capsys):
        out = _run("sampling_bias.py", ["10000"], monkeypatch, capsys)
        assert "snowball" in out
        assert "inflated" in out

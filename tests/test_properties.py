"""Cross-cutting property-based tests (hypothesis).

Each property here guards an invariant several subsystems rely on:
token-bucket conservation, pacer rate ceilings, anchored-curve
monotonicity under arbitrary anchor sets, and SteamID arithmetic.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crawler.throttle import PolitePacer
from repro.simworld.marginals import AnchoredCurve, TailSpec
from repro.steamapi.ratelimit import TokenBucket, VirtualClock


class TestTokenBucketProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0),  # advance
                st.booleans(),  # attempt acquire
            ),
            max_size=60,
        )
    )
    @settings(max_examples=80)
    def test_never_grants_beyond_refill_plus_burst(self, schedule):
        clock = VirtualClock()
        rate, burst = 2.0, 3.0
        bucket = TokenBucket(rate=rate, burst=burst, clock=clock)
        granted = 0
        for advance, attempt in schedule:
            clock.advance(advance)
            if attempt and bucket.try_acquire():
                granted += 1
        ceiling = burst + clock() * rate + 1e-6
        assert granted <= ceiling

    @given(st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=40)
    def test_wait_time_is_sufficient(self, rate):
        clock = VirtualClock()
        bucket = TokenBucket(rate=rate, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        wait = bucket.wait_time()
        clock.advance(wait + 1e-9)
        assert bucket.try_acquire()


class TestPacerProperties:
    @given(
        st.floats(min_value=0.5, max_value=500.0),
        st.integers(min_value=2, max_value=200),
    )
    @settings(max_examples=50)
    def test_rate_ceiling(self, rate, n_requests):
        class Fake:
            def __init__(self):
                self.now = 0.0

            def clock(self):
                return self.now

            def sleep(self, seconds):
                self.now += seconds

        fake = Fake()
        pacer = PolitePacer(
            rate, politeness=0.85, clock=fake.clock, sleeper=fake.sleep
        )
        for _ in range(n_requests):
            pacer.pace()
        # n requests can never complete faster than (n-1)/effective_rate.
        minimum = (n_requests - 1) / (rate * 0.85)
        assert fake.now >= minimum - 1e-6


anchor_values = st.lists(
    st.floats(min_value=0.5, max_value=1e6),
    min_size=2,
    max_size=6,
    unique=True,
)


class TestAnchoredCurveProperties:
    @given(
        anchor_values,
        st.floats(min_value=1.2, max_value=6.0),
        st.lists(
            st.floats(min_value=0.0, max_value=0.999),
            min_size=2,
            max_size=20,
        ),
    )
    @settings(max_examples=80)
    def test_monotone_for_arbitrary_anchors(self, values, alpha, us):
        xs = sorted(values)
        qs = np.linspace(0.3, 0.95, len(xs))
        curve = AnchoredCurve(
            anchors=tuple(zip(qs, xs)),
            x_min=xs[0] / 2,
            tail=TailSpec("pareto", alpha),
        )
        us = sorted(us)
        outputs = curve.ppf(np.array(us))
        assert np.all(np.diff(outputs) >= -1e-9)

    @given(anchor_values, st.floats(min_value=1.2, max_value=6.0))
    @settings(max_examples=60)
    def test_anchors_always_exact(self, values, alpha):
        xs = sorted(values)
        qs = np.linspace(0.3, 0.95, len(xs))
        curve = AnchoredCurve(
            anchors=tuple(zip(qs, xs)),
            x_min=xs[0] / 2,
            tail=TailSpec("pareto", alpha),
        )
        for q, x in zip(qs, xs):
            assert curve.ppf(q) == pytest.approx(x, rel=1e-9)


class TestSteamIdProperties:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60)
    def test_text_form_parses_back(self, account):
        from repro import steamid

        sid = steamid.to_steamid64(account)
        text = steamid.to_text(sid)
        assert text.startswith("STEAM_")
        assert steamid.from_text(text) == sid

    @given(
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40)
    def test_ordering_preserved(self, a, b):
        from repro import steamid

        sid_a, sid_b = steamid.to_steamid64(a), steamid.to_steamid64(b)
        assert (a < b) == (sid_a < sid_b)

"""End-to-end integration: every path to a report agrees.

Four routes produce the same numbers from one world: direct analysis,
analysis after a save/load round trip, analysis of the crawler's
reconstruction, and analysis after sharding + merge (for the shared
sub-population).
"""

import numpy as np
import pytest

from repro import SteamStudy
from repro.core.percentiles import percentile_table
from repro.store.io import load_dataset, save_dataset


class TestEndToEndAgreement:
    def test_direct_vs_saved_vs_crawled(self, small_world, tmp_path):
        direct = SteamStudy(
            world=small_world, _dataset=small_world.dataset
        )
        path = save_dataset(small_world.dataset, tmp_path / "w.npz")
        reloaded = SteamStudy.from_dataset(load_dataset(path))
        crawled = direct.crawl()

        reports = {
            "direct": direct.run(include_table4=False, include_week_panel=False),
            "reloaded": reloaded.run(
                include_table4=False, include_week_panel=False
            ),
            "crawled": SteamStudy.from_dataset(crawled.dataset).run(
                include_table4=False, include_week_panel=False
            ),
        }
        base = reports["direct"]
        for name, report in reports.items():
            for row_a, row_b in zip(
                base.table3.rows, report.table3.rows
            ):
                assert row_a.values == pytest.approx(row_b.values), name
            assert report.fig10_multiplayer.total_playtime_share == (
                pytest.approx(base.fig10_multiplayer.total_playtime_share)
            ), name
            assert report.summary == pytest.approx(base.summary), name

    def test_report_renders_identically(self, small_world, tmp_path):
        direct = SteamStudy(world=small_world, _dataset=small_world.dataset)
        path = save_dataset(small_world.dataset, tmp_path / "w.npz")
        reloaded = SteamStudy.from_dataset(load_dataset(path))
        a = direct.run(include_table4=False, include_week_panel=False)
        b = reloaded.run(include_table4=False, include_week_panel=False)
        assert a.render() == b.render()

    def test_same_seed_reports_identical_across_processes(self):
        """The whole pipeline is a pure function of (n_users, seed)."""
        import os
        import subprocess
        import sys

        # sha256 of the rendered report is hash-randomization-proof,
        # and inheriting os.environ keeps PYTHONPATH (and thus the
        # ``repro`` import) working both installed and from-source.
        script = (
            "import hashlib;"
            "from repro import SteamStudy;"
            "r = SteamStudy.generate(n_users=2000, seed=17)"
            ".run(include_table4=False, include_week_panel=False);"
            "print(hashlib.sha256(r.render().encode()).hexdigest())"
        )
        outputs = {
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={**os.environ, "PYTHONHASHSEED": "0"},
                check=True,
            ).stdout
            for _ in range(2)
        }
        assert len(outputs) == 1

    def test_percentiles_stable_under_user_permutation_invariance(
        self, small_dataset
    ):
        """Percentile statistics do not depend on user ordering."""
        table = percentile_table(small_dataset)
        # Recompute from raw arrays shuffled.
        rng = np.random.default_rng(0)
        friends = small_dataset.friend_counts().astype(float)
        shuffled = rng.permutation(friends)
        row = table.row("friends")
        positive = shuffled[shuffled > 0]
        assert row.values[0] == pytest.approx(np.percentile(positive, 50))

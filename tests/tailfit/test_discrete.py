"""Discrete power-law fitting."""

import numpy as np
import pytest

from repro.tailfit.discrete import DiscretePowerLawFit, hurwitz_zeta


def _sample_discrete_pl(rng, n, alpha, xmin=1, kmax=100_000):
    support = np.arange(xmin, kmax, dtype=np.float64)
    pmf = support ** (-alpha)
    pmf /= pmf.sum()
    return rng.choice(support, size=n, p=pmf).astype(np.int64)


class TestHurwitzZeta:
    def test_reduces_to_riemann(self):
        from scipy.special import zeta

        assert hurwitz_zeta(2.0, 1.0) == pytest.approx(float(zeta(2.0)))

    def test_rejects_s_below_one(self):
        with pytest.raises(ValueError):
            hurwitz_zeta(0.9, 1.0)


class TestDiscreteFit:
    def test_recovers_alpha(self, rng):
        sample = _sample_discrete_pl(rng, 50_000, alpha=2.3)
        fit = DiscretePowerLawFit.fit(sample, xmin=1)
        assert fit.alpha == pytest.approx(2.3, abs=0.05)

    def test_recovers_alpha_with_xmin(self, rng):
        sample = _sample_discrete_pl(rng, 80_000, alpha=2.0, xmin=1)
        fit = DiscretePowerLawFit.fit(sample, xmin=5)
        assert fit.alpha == pytest.approx(2.0, abs=0.1)

    def test_continuous_fit_biased_at_small_xmin(self, rng):
        """The discrete MLE beats the continuous one on integer data."""
        from repro.tailfit.fits import PowerLawFit

        sample = _sample_discrete_pl(rng, 50_000, alpha=2.5)
        discrete = DiscretePowerLawFit.fit(sample, xmin=1)
        continuous = PowerLawFit.fit(sample.astype(float), xmin=1.0)
        assert abs(discrete.alpha - 2.5) < abs(continuous.alpha - 2.5)

    def test_pmf_sums_to_one(self):
        fit = DiscretePowerLawFit(xmin=1, alpha=2.5, n=10)
        support = np.arange(1, 200_000)
        assert fit.pmf(support).sum() == pytest.approx(1.0, abs=1e-3)

    def test_cdf_monotone_bounded(self):
        fit = DiscretePowerLawFit(xmin=2, alpha=2.0, n=10)
        ks = np.array([1, 2, 5, 10, 100])
        cdf = fit.cdf(ks)
        assert cdf[0] == 0.0
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] < 1.0

    def test_loglikelihood_peaks_at_mle(self, rng):
        sample = _sample_discrete_pl(rng, 20_000, alpha=2.2)
        fit = DiscretePowerLawFit.fit(sample, xmin=1)
        ll_mle = fit.loglikelihood(sample)
        for other in (fit.alpha - 0.3, fit.alpha + 0.3):
            alt = DiscretePowerLawFit(xmin=1, alpha=other, n=fit.n)
            assert alt.loglikelihood(sample) < ll_mle

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            DiscretePowerLawFit.fit(np.array([1, 2, 3]), xmin=0)
        with pytest.raises(ValueError):
            DiscretePowerLawFit.fit(np.array([1]), xmin=5)

"""Vuong log-likelihood-ratio tests."""

import numpy as np
import pytest

from repro.tailfit.compare import CompareResult, loglikelihood_ratio


class TestLoglikelihoodRatio:
    def test_sign_favors_better_model(self, rng):
        n = 10_000
        ll_good = rng.normal(0.0, 1.0, n)
        ll_bad = ll_good - 0.1  # uniformly worse
        result = loglikelihood_ratio(ll_good, ll_bad)
        assert result.R > 0
        assert result.p < 0.01
        assert result.favors_first()
        assert not result.favors_second()

    def test_symmetric(self, rng):
        a = rng.normal(0, 1, 1000)
        b = rng.normal(0, 1, 1000)
        fwd = loglikelihood_ratio(a, b)
        rev = loglikelihood_ratio(b, a)
        assert fwd.R == pytest.approx(-rev.R)
        assert fwd.p == pytest.approx(rev.p)

    def test_identical_models_inconclusive(self, rng):
        ll = rng.normal(0, 1, 1000)
        result = loglikelihood_ratio(ll, ll.copy())
        assert result.p == 1.0
        assert not result.conclusive()

    def test_noise_is_inconclusive(self, rng):
        # Zero-mean iid differences: p should usually be large.
        a = rng.normal(0, 1, 2_000)
        diff = rng.normal(0, 1, 2_000) * 0.5
        result = loglikelihood_ratio(a, a - diff + diff.mean())
        assert result.p > 0.01

    def test_nested_uses_chi2(self, rng):
        ll_a = rng.normal(0, 1, 500)
        # Nested: a small noisy summed advantage that Vuong cannot call
        # is still significant-ish under the chi-squared form.
        ll_b = ll_a - 0.002 - rng.normal(0, 0.3, 500)
        nested = loglikelihood_ratio(ll_a, ll_b, nested=True)
        vuong = loglikelihood_ratio(ll_a, ll_b, nested=False)
        assert nested.p < vuong.p

    def test_iterable_unpacking(self, rng):
        a = rng.normal(0, 1, 100)
        R, p = loglikelihood_ratio(a, a - 1.0)
        assert R == pytest.approx(100.0)
        assert 0 <= p <= 1

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            loglikelihood_ratio(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            loglikelihood_ratio(np.empty(0), np.empty(0))


class TestCompareResult:
    def test_favors_requires_significance(self):
        weak = CompareResult(R=5.0, p=0.5)
        assert not weak.favors_first()
        strong = CompareResult(R=5.0, p=0.001)
        assert strong.favors_first()

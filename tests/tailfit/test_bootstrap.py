"""Bootstrap power-law goodness-of-fit."""

import numpy as np
import pytest

from repro.tailfit import power_law_gof


class TestPowerLawGof:
    def test_true_power_law_survives(self):
        rng = np.random.default_rng(5)
        sample = 1.0 * (1 - rng.random(5_000)) ** (-1 / 1.5)
        gof = power_law_gof(sample, n_bootstrap=40, rng=np.random.default_rng(0))
        assert gof.plausible()
        assert gof.alpha == pytest.approx(2.5, abs=0.2)

    def test_lognormal_rejected(self):
        rng = np.random.default_rng(6)
        sample = np.exp(rng.normal(1.0, 0.5, 8_000))
        gof = power_law_gof(sample, n_bootstrap=40, rng=np.random.default_rng(0))
        assert gof.p_value < 0.3  # narrow lognormal is clearly not a PL

    def test_steam_playtime_not_pure_power_law(self, dataset):
        """The paper: 'we do not observe any true power law distributions'."""
        playtime = dataset.total_playtime_hours()
        gof = power_law_gof(
            playtime[playtime > 0],
            n_bootstrap=30,
            max_n=8_000,
            rng=np.random.default_rng(0),
        )
        assert not gof.plausible(threshold=0.5)

    def test_subsampling_cap(self):
        rng = np.random.default_rng(7)
        sample = 1.0 * (1 - rng.random(50_000)) ** (-1 / 1.5)
        gof = power_law_gof(
            sample, n_bootstrap=5, max_n=2_000, rng=np.random.default_rng(0)
        )
        assert gof.n_bootstrap == 5

    def test_rejects_tiny_samples(self):
        with pytest.raises(ValueError):
            power_law_gof(np.ones(10))

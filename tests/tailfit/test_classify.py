"""The paper's 4-way classification on synthetic ground truth."""

import numpy as np
import pytest

from repro import constants
from repro.tailfit import classify


class TestKnownDistributions:
    def test_exponential_is_not_heavy(self):
        sample = np.random.default_rng(1).exponential(5.0, 30_000) + 0.1
        result = classify(sample, rng=np.random.default_rng(0))
        assert result.label == "not heavy-tailed"

    def test_pure_power_law_stays_heavy(self):
        sample = 1.0 * (
            1 - np.random.default_rng(2).random(30_000)
        ) ** (-1 / 1.5)
        result = classify(sample, rng=np.random.default_rng(0))
        # Nothing beats the power law conclusively on both fronts.
        assert result.label == constants.CLASS_HEAVY

    def test_truncated_power_law_detected(self):
        gen = np.random.default_rng(11)
        raw = 1.0 * (1 - gen.random(2_000_000)) ** (-1 / 1.2)
        keep = gen.random(len(raw)) < np.exp(-raw / 400.0)
        sample = raw[keep][:40_000]
        result = classify(sample, rng=np.random.default_rng(0))
        assert result.label == constants.CLASS_TPL

    def test_lognormal_classified_in_family(self):
        sample = np.exp(np.random.default_rng(3).normal(2.0, 1.6, 40_000))
        result = classify(sample, rng=np.random.default_rng(0))
        # Lognormal data can be provably lognormal or stuck in the
        # LN-vs-TPL ambiguity band ("long-tailed") — never TPL/PL.
        assert result.label in (
            constants.CLASS_LOGNORMAL,
            constants.CLASS_LONG,
        )


class TestResultObject:
    def test_row_has_table4_columns(self):
        sample = np.exp(np.random.default_rng(4).normal(2.0, 1.2, 5_000))
        result = classify(sample, rng=np.random.default_rng(0))
        row = result.row()
        assert "PL vs exp R" in row
        assert "TPL vs LN p" in row
        assert row["classification"] == result.label

    def test_explicit_xmin_respected(self):
        sample = np.exp(np.random.default_rng(4).normal(2.0, 1.2, 5_000))
        result = classify(sample, xmin=20.0, rng=np.random.default_rng(0))
        assert result.xmin == 20.0

    def test_tail_count_positive(self):
        sample = np.exp(np.random.default_rng(4).normal(2.0, 1.2, 5_000))
        result = classify(sample, rng=np.random.default_rng(0))
        assert result.n_tail > 50

"""Maximum-likelihood tail fits recover known parameters."""

import numpy as np
import pytest

from repro.tailfit.fits import (
    ExponentialFit,
    Fit,
    LognormalFit,
    PowerLawFit,
    TruncatedPowerLawFit,
    upper_gamma,
)


@pytest.fixture(scope="module")
def module_rng():
    return np.random.default_rng(77)


class TestUpperGamma:
    def test_positive_a_matches_scipy(self):
        from scipy import special

        assert upper_gamma(2.5, 1.3) == pytest.approx(
            float(special.gammaincc(2.5, 1.3) * special.gamma(2.5)),
            rel=1e-10,
        )

    def test_a_one_is_exponential(self):
        assert upper_gamma(1.0, 2.0) == pytest.approx(np.exp(-2.0), rel=1e-9)

    def test_negative_a_via_recursion(self):
        # Verify against numerical integration.
        from scipy.integrate import quad

        for a, x in [(-0.5, 1.0), (-1.3, 0.5), (-2.7, 2.0)]:
            expected, _ = quad(
                lambda t: t ** (a - 1) * np.exp(-t), x, np.inf
            )
            assert upper_gamma(a, x) == pytest.approx(expected, rel=1e-6)

    def test_rejects_nonpositive_x(self):
        with pytest.raises(ValueError):
            upper_gamma(0.5, 0.0)


class TestPowerLawFit:
    def test_recovers_alpha(self, module_rng):
        alpha = 2.5
        sample = 1.0 * (1 - module_rng.random(100_000)) ** (-1 / (alpha - 1))
        fit = PowerLawFit.fit(sample, xmin=1.0)
        assert fit.alpha == pytest.approx(alpha, rel=0.02)

    def test_cdf_bounds(self, module_rng):
        sample = 1.0 * (1 - module_rng.random(1_000)) ** (-1 / 1.5)
        fit = PowerLawFit.fit(sample, xmin=1.0)
        cdf = fit.cdf(np.sort(sample))
        assert cdf.min() >= 0 and cdf.max() <= 1
        assert np.all(np.diff(cdf) >= -1e-12)

    def test_loglikelihood_is_sum(self, module_rng):
        sample = 1.0 * (1 - module_rng.random(100)) ** (-1 / 1.5)
        fit = PowerLawFit.fit(sample, xmin=1.0)
        assert fit.loglikelihood(sample) == pytest.approx(
            float(fit.loglikelihoods(sample).sum())
        )

    def test_rejects_tiny_tail(self):
        with pytest.raises(ValueError):
            PowerLawFit.fit(np.array([0.5, 0.6]), xmin=1.0)


class TestExponentialFit:
    def test_recovers_lambda(self, module_rng):
        sample = 2.0 + module_rng.exponential(1 / 0.7, 50_000)
        fit = ExponentialFit.fit(sample, xmin=2.0)
        assert fit.lam == pytest.approx(0.7, rel=0.03)


class TestLognormalFit:
    def test_recovers_parameters_untruncated(self, module_rng):
        sample = np.exp(module_rng.normal(1.5, 0.8, 50_000))
        fit = LognormalFit.fit(sample, xmin=sample.min())
        assert fit.mu == pytest.approx(1.5, abs=0.1)
        assert fit.sigma == pytest.approx(0.8, abs=0.1)

    def test_recovers_parameters_truncated(self, module_rng):
        sample = np.exp(module_rng.normal(1.0, 1.2, 200_000))
        xmin = float(np.exp(1.5))  # cut well above the median
        fit = LognormalFit.fit(sample, xmin=xmin)
        assert fit.mu == pytest.approx(1.0, abs=0.25)
        assert fit.sigma == pytest.approx(1.2, abs=0.15)

    def test_cdf_monotone(self, module_rng):
        sample = np.exp(module_rng.normal(0, 1, 2_000))
        fit = LognormalFit.fit(sample, xmin=0.5)
        tail = np.sort(sample[sample >= 0.5])
        cdf = fit.cdf(tail)
        assert np.all(np.diff(cdf) >= -1e-12)


class TestTruncatedPowerLawFit:
    def test_recovers_parameters(self, module_rng):
        # Rejection-sample x^-1.6 e^{-x/80} above xmin=1.
        raw = 1.0 * (1 - module_rng.random(3_000_000)) ** (-1 / 0.6)
        keep = module_rng.random(len(raw)) < np.exp(-raw / 80.0)
        sample = raw[keep]
        fit = TruncatedPowerLawFit.fit(sample, xmin=1.0)
        assert fit.alpha == pytest.approx(1.6, abs=0.15)
        assert fit.lam == pytest.approx(1 / 80.0, rel=0.4)

    def test_cdf_reaches_one(self, module_rng):
        raw = 1.0 * (1 - module_rng.random(100_000)) ** (-1 / 0.8)
        keep = module_rng.random(len(raw)) < np.exp(-raw / 30.0)
        sample = raw[keep]
        fit = TruncatedPowerLawFit.fit(sample, xmin=1.0)
        assert float(fit.cdf(np.array([1e9]))[0]) == pytest.approx(
            1.0, abs=1e-3
        )


class TestFitFacade:
    def test_attribute_access(self, module_rng):
        sample = np.exp(module_rng.normal(1, 1, 5_000))
        fit = Fit(sample, xmin=1.0)
        assert fit.power_law.alpha > 1.0
        assert fit.lognormal.sigma > 0

    def test_caches_family_fits(self, module_rng):
        sample = np.exp(module_rng.normal(1, 1, 5_000))
        fit = Fit(sample, xmin=1.0)
        assert fit.fit_family("power_law") is fit.fit_family("power_law")

    def test_subsampling_cap(self, module_rng):
        sample = np.exp(module_rng.normal(1, 1, 50_000))
        fit = Fit(sample, xmin=1.0, max_tail=10_000, rng=module_rng)
        assert len(fit.data) == 10_000

    def test_rejects_tiny_samples(self):
        with pytest.raises(ValueError):
            Fit(np.arange(5).astype(float))

    def test_drops_nonpositive(self, module_rng):
        sample = np.concatenate(
            [np.zeros(100), np.exp(module_rng.normal(1, 1, 1_000))]
        )
        fit = Fit(sample, xmin=0.5)
        assert fit.data.min() > 0

    def test_unknown_attribute_raises(self, module_rng):
        fit = Fit(np.exp(module_rng.normal(1, 1, 100)), xmin=1.0)
        with pytest.raises(AttributeError):
            _ = fit.weibull

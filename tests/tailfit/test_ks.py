"""KS distance and xmin selection."""

import numpy as np
import pytest

from repro.tailfit.fits import PowerLawFit
from repro.tailfit.ks import ks_distance, select_xmin


class TestKsDistance:
    def test_zero_for_matching_quantiles(self, rng):
        # Sample from the fitted distribution exactly via inverse CDF.
        alpha = 2.0
        u = (np.arange(1, 10_001) - 0.5) / 10_000
        sample = np.sort(1.0 * (1 - u) ** (-1 / (alpha - 1)))
        fit = PowerLawFit.fit(sample, xmin=1.0)
        assert ks_distance(sample, fit) < 0.01

    def test_large_for_wrong_model(self, rng):
        sample = np.sort(rng.exponential(1.0, 10_000) + 1.0)
        fit = PowerLawFit.fit(sample, xmin=1.0)
        assert ks_distance(sample, fit) > 0.05

    def test_rejects_empty(self, rng):
        fit = PowerLawFit.fit(np.array([1.0, 2.0, 4.0]), xmin=1.0)
        with pytest.raises(ValueError):
            ks_distance(np.empty(0), fit)


class TestSelectXmin:
    def test_finds_transition_point(self, rng):
        """Exponential body below 10, power law above: xmin ~ 10."""
        body = rng.uniform(1.0, 10.0, 30_000)
        tail = 10.0 * (1 - rng.random(10_000)) ** (-1 / 1.5)
        sample = np.sort(np.concatenate([body, tail]))
        xmin, ks = select_xmin(sample, min_tail=100)
        assert 6.0 <= xmin <= 16.0
        assert ks < 0.1

    def test_pure_power_law_picks_low_xmin(self, rng):
        sample = np.sort(1.0 * (1 - rng.random(20_000)) ** (-1 / 1.5))
        xmin, _ = select_xmin(sample, min_tail=100)
        assert xmin < np.percentile(sample, 60)

    def test_respects_min_tail(self, rng):
        sample = np.sort(1.0 * (1 - rng.random(5_000)) ** (-1 / 1.5))
        xmin, _ = select_xmin(sample, min_tail=1_000)
        assert np.sum(sample >= xmin) >= 1_000

    def test_handles_constant_data(self):
        sample = np.full(100, 3.0)
        xmin, ks = select_xmin(sample)
        assert xmin == 3.0

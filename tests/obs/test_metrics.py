"""Counters, gauges, histograms, and the registry."""

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("requests")
        c.inc()
        c.inc(2)
        assert c.value() == 3

    def test_labeled_series_are_independent(self):
        c = Counter("requests", labelnames=("endpoint",))
        c.inc(endpoint="GetFriendList")
        c.inc(5, endpoint="GetOwnedGames")
        assert c.value(endpoint="GetFriendList") == 1
        assert c.value(endpoint="GetOwnedGames") == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("requests").inc(-1)

    def test_rejects_wrong_labels(self):
        c = Counter("requests", labelnames=("endpoint",))
        with pytest.raises(ValueError):
            c.inc(kind="oops")
        with pytest.raises(ValueError):
            c.inc()  # missing the label entirely

    def test_snapshot_sorted_by_label_values(self):
        c = Counter("requests", labelnames=("endpoint",))
        c.inc(endpoint="zeta")
        c.inc(endpoint="alpha")
        labels = [s["labels"] for s in c.snapshot()["series"]]
        assert labels == [["alpha"], ["zeta"]]

    def test_bound_child_matches_direct(self):
        c = Counter("requests", labelnames=("endpoint",))
        child = c.labels(endpoint="GetFriendList")
        child.inc()
        child.inc(3)
        assert c.value(endpoint="GetFriendList") == 4

    def test_bound_child_validates_at_bind_time(self):
        c = Counter("requests", labelnames=("endpoint",))
        with pytest.raises(ValueError):
            c.labels(kind="oops")

    def test_bound_child_rejects_negative(self):
        c = Counter("requests")
        with pytest.raises(ValueError):
            c.labels().inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("throughput")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value() == 13

    def test_can_go_negative(self):
        g = Gauge("balance")
        g.dec(7)
        assert g.value() == -7


class TestHistogram:
    def test_bucket_placement(self):
        h = Histogram("latency", buckets=(0.1, 1.0))
        h.observe(0.05)  # first bucket
        h.observe(0.1)  # boundary is inclusive (le semantics)
        h.observe(0.5)  # second bucket
        h.observe(99.0)  # +Inf
        series = h.snapshot()["series"][0]
        assert series["buckets"] == [2, 1, 1]
        assert series["count"] == 4
        assert series["sum"] == pytest.approx(99.65)

    def test_count_and_sum_accessors(self):
        h = Histogram("latency")
        h.observe(0.25)
        h.observe(0.75)
        assert h.count() == 2
        assert h.sum() == pytest.approx(1.0)

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            DEFAULT_LATENCY_BUCKETS
        )

    def test_rejects_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram("latency", buckets=())

    def test_rejects_duplicate_bounds(self):
        with pytest.raises(ValueError):
            Histogram("latency", buckets=(0.1, 0.1))

    def test_bound_child_matches_direct(self):
        h = Histogram("latency", buckets=(0.1, 1.0), labelnames=("endpoint",))
        child = h.labels(endpoint="appdetails")
        child.observe(0.05)
        child.observe(2.0)
        assert h.count(endpoint="appdetails") == 2
        series = h.snapshot()["series"][0]
        assert series["buckets"] == [1, 0, 1]


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        a = reg.counter("requests")
        b = reg.counter("requests")
        assert a is b

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("requests")
        with pytest.raises(TypeError):
            reg.gauge("requests")

    def test_metrics_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("zeta")
        reg.gauge("alpha")
        reg.histogram("mid")
        assert [m.name for m in reg.metrics()] == ["alpha", "mid", "zeta"]

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("requests").inc()
        snap = reg.snapshot()
        assert snap["requests"]["kind"] == "counter"
        assert snap["requests"]["series"] == [{"labels": [], "value": 1}]


class TestRegistryMerge:
    """Worker registries fold into the coordinator's (executor path)."""

    def _worker_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("stages_done", "done", ("kind",)).inc(2, kind="fig")
        reg.gauge("live_rps", "rps").set(41.5)
        reg.histogram(
            "stage_seconds", "latency", buckets=(0.1, 1.0), labelnames=("stage",)
        ).observe(0.5, stage="fig1")
        return reg.snapshot()

    def test_merge_into_empty_equals_source(self):
        snap = self._worker_snapshot()
        reg = MetricsRegistry()
        reg.merge(snap)
        assert reg.snapshot() == snap

    def test_counters_add_and_gauges_overwrite(self):
        reg = MetricsRegistry()
        reg.counter("stages_done", "done", ("kind",)).inc(3, kind="fig")
        reg.gauge("live_rps", "rps").set(7.0)
        reg.merge(self._worker_snapshot())
        assert reg.get("stages_done").value(kind="fig") == 5
        assert reg.get("live_rps").value() == 41.5

    def test_histogram_cells_add(self):
        reg = MetricsRegistry()
        reg.histogram(
            "stage_seconds", "latency", buckets=(0.1, 1.0), labelnames=("stage",)
        ).observe(5.0, stage="fig1")
        reg.merge(self._worker_snapshot())
        hist = reg.get("stage_seconds")
        assert hist.count(stage="fig1") == 2
        assert hist.sum(stage="fig1") == pytest.approx(5.5)
        series = hist.snapshot()["series"][0]
        assert series["buckets"] == [0, 1, 1]  # 0.5 in le=1.0, 5.0 in +Inf

    def test_merge_equals_direct_observation_bytes(self):
        """merge(snapshot) must be indistinguishable from having made
        the same observations locally — the serial/parallel parity
        contract in one assertion."""
        direct = MetricsRegistry()
        direct.histogram(
            "stage_seconds", "latency", buckets=(0.1, 1.0), labelnames=("stage",)
        ).observe(0.5, stage="fig1")
        direct.counter("stages_done", "done", ("kind",)).inc(2, kind="fig")
        direct.gauge("live_rps", "rps").set(41.5)
        merged = MetricsRegistry()
        merged.merge(self._worker_snapshot())
        assert merged.snapshot() == direct.snapshot()

    def test_bound_bucket_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram(
            "stage_seconds", "latency", buckets=(0.25,), labelnames=("stage",)
        )
        with pytest.raises(ValueError):
            reg.merge(self._worker_snapshot())

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge({"weird": {"kind": "mystery"}})

"""Unit tests for SLO error budgets and burn-rate alerts
(:mod:`repro.obs.slo`)."""

from __future__ import annotations

import pytest

from repro.obs.clock import FakeClock
from repro.obs.slo import (
    DEFAULT_WINDOWS,
    BurnWindow,
    SLOSpec,
    SLOTracker,
)


def test_spec_goodness_rules():
    spec = SLOSpec(route="/a", target=0.999, latency_threshold_s=0.1)
    assert spec.is_good(200, 0.05)
    assert not spec.is_good(200, 0.2)  # slow success is still bad
    assert not spec.is_good(500, 0.01)
    assert not spec.is_good(504, 0.01)
    assert not spec.is_good(429, 0.0)  # shedding spends budget...
    assert not spec.is_good(499, 0.01)  # ...and so do aborts
    assert spec.is_good(404, 0.01)  # client errors are not our badness
    lenient = SLOSpec(route="/a", shed_is_bad=False)
    assert lenient.is_good(429, 0.0)  # ...unless shedding is contractual


def test_spec_validation():
    with pytest.raises(ValueError):
        SLOSpec(route="/a", target=1.0)
    with pytest.raises(ValueError):
        SLOSpec(route="/a", target=0.0)
    with pytest.raises(ValueError):
        SLOSpec(route="/a", latency_threshold_s=0.0)


def test_default_windows_are_the_workbook_pairs():
    assert [(w.name, w.long_s, w.short_s, w.threshold) for w in DEFAULT_WINDOWS] == [
        ("page", 3600.0, 300.0, 14.4),
        ("ticket", 21600.0, 1800.0, 6.0),
    ]


def _tracker(clock, **spec_kwargs):
    defaults = dict(route="*", target=0.999, latency_threshold_s=0.25)
    defaults.update(spec_kwargs)
    return SLOTracker([SLOSpec(**defaults)], clock=clock)


def test_burn_rate_math_is_exact():
    clock = FakeClock()
    tracker = _tracker(clock, target=0.9)  # budget fraction 0.1
    for _ in range(8):
        tracker.record("/a", 200, 0.01)
    for _ in range(2):
        tracker.record("/a", 500, 0.01)
    alerts = tracker.evaluate()
    # bad fraction 0.2 over a 0.1 budget = burn rate 2.0 on every window.
    assert all(a.long_burn == pytest.approx(2.0) for a in alerts)
    assert all(a.short_burn == pytest.approx(2.0) for a in alerts)
    assert not any(a.firing for a in alerts)  # 2.0 < 6.0 < 14.4


def test_alert_needs_both_windows_over_threshold():
    clock = FakeClock()
    windows = (BurnWindow("w", long_s=1000.0, short_s=100.0, threshold=4.0, severity="page"),)
    tracker = SLOTracker(
        [SLOSpec(route="*", target=0.9, latency_threshold_s=0.25)],
        windows=windows,
        clock=clock,
    )
    # Old badness: lands in the long window but ages out of the short.
    for _ in range(50):
        tracker.record("/a", 500, 0.01)
    clock.advance(400.0)  # past the short window, inside the long one
    for _ in range(50):
        tracker.record("/a", 200, 0.01)
    (alert,) = tracker.evaluate()
    assert alert.long_burn >= windows[0].threshold
    assert alert.short_burn < windows[0].threshold
    assert not alert.firing  # short window vetoes: problem has stopped
    # Fresh badness: both windows agree, the alert fires.
    for _ in range(50):
        tracker.record("/a", 500, 0.01)
    (alert,) = tracker.evaluate()
    assert alert.firing


def test_windows_expire_on_the_clock():
    clock = FakeClock()
    windows = (BurnWindow("w", long_s=1000.0, short_s=100.0, threshold=1.0, severity="page"),)
    tracker = SLOTracker(
        [SLOSpec(route="*", target=0.9)], windows=windows, clock=clock
    )
    for _ in range(10):
        tracker.record("/a", 500, 0.01)
    (alert,) = tracker.evaluate()
    assert alert.firing
    clock.advance(2000.0)  # everything ages out of both windows
    (alert,) = tracker.evaluate()
    assert alert.long_burn == 0.0
    assert not alert.firing


def test_alert_fires_count_rising_edges_only():
    clock = FakeClock()
    windows = (BurnWindow("w", long_s=1000.0, short_s=100.0, threshold=1.0, severity="page"),)
    tracker = SLOTracker(
        [SLOSpec(route="*", target=0.9)], windows=windows, clock=clock
    )
    for _ in range(10):
        tracker.record("/a", 500, 0.01)
    tracker.evaluate()
    tracker.evaluate()  # still firing: not a new edge
    assert tracker.alert_fires == {("/a", "w"): 1}
    clock.advance(2000.0)
    tracker.evaluate()  # quiet again
    for _ in range(10):
        tracker.record("/a", 500, 0.01)
    tracker.evaluate()  # second rising edge
    assert tracker.alert_fires == {("/a", "w"): 2}


def test_route_specific_spec_beats_catchall():
    clock = FakeClock()
    tracker = SLOTracker(
        [
            SLOSpec(route="*", target=0.999),
            SLOSpec(route="/slow", target=0.9, latency_threshold_s=5.0),
        ],
        clock=clock,
    )
    assert tracker.spec_for("/slow").target == 0.9
    assert tracker.spec_for("/other").target == 0.999
    untracked = SLOTracker(
        [SLOSpec(route="/only")], clock=clock
    )
    untracked.record("/other", 500, 0.01)  # no spec, no tracking
    assert untracked.snapshot()["routes"] == {}


def test_snapshot_shape_and_budget_remaining():
    clock = FakeClock()
    tracker = _tracker(clock, target=0.9)
    for _ in range(9):
        tracker.record("/a", 200, 0.01)
    tracker.record("/a", 500, 0.01)
    snap = tracker.snapshot()
    entry = snap["routes"]["/a"]
    assert entry["good"] == 9
    assert entry["bad"] == 1
    # bad fraction exactly the budget: remaining budget is zero.
    assert entry["budget_remaining"] == pytest.approx(0.0)
    assert {a["window"] for a in snap["alerts"]} == {"page", "ticket"}
    assert snap["alert_fires"] == {}


def test_deterministic_under_fake_clock():
    def run() -> dict:
        clock = FakeClock(tick=0.001)
        tracker = _tracker(clock)
        for i in range(50):
            tracker.record("/a", 500 if i % 5 == 0 else 200, 0.01)
        return tracker.snapshot()

    assert run() == run()

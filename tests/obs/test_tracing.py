"""Span tracing and the fake clock."""

import pytest

from repro.obs import FakeClock, Obs, Tracer, maybe_span


class TestFakeClock:
    def test_tick_advances_per_read(self):
        clock = FakeClock(start=10.0, tick=0.5)
        assert clock() == 10.0
        assert clock() == 10.5
        assert clock.reads == 2

    def test_zero_tick_stands_still(self):
        clock = FakeClock()
        assert clock() == clock() == 0.0

    def test_advance(self):
        clock = FakeClock()
        clock.advance(3.0)
        assert clock() == 3.0

    def test_time_cannot_go_backwards(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-1)


class TestTracer:
    def test_nesting(self):
        tracer = Tracer(clock=FakeClock(tick=1.0))
        with tracer.span("crawl"):
            with tracer.span("phase:profiles"):
                pass
            with tracer.span("phase:details"):
                pass
        roots = tracer.roots()
        assert [r.name for r in roots] == ["crawl"]
        assert [c.name for c in roots[0].children] == [
            "phase:profiles",
            "phase:details",
        ]

    def test_durations_from_fake_clock(self):
        tracer = Tracer(clock=FakeClock(tick=1.0))
        with tracer.span("outer"):
            pass
        root = tracer.roots()[0]
        assert root.start == 0.0
        assert root.end == 1.0
        assert root.duration == 1.0

    def test_attrs_snapshot_sorted(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("s", zebra=1, alpha=2):
            pass
        snap = tracer.snapshot()[0]
        assert list(snap["attrs"]) == ["alpha", "zebra"]

    def test_aggregate_rolls_up_by_name(self):
        tracer = Tracer(clock=FakeClock(tick=1.0))
        for _ in range(3):
            with tracer.span("shard"):
                pass
        agg = tracer.aggregate()
        assert agg["shard"]["count"] == 3
        assert agg["shard"]["total_seconds"] == pytest.approx(3.0)

    def test_sibling_roots_sorted_by_start(self):
        tracer = Tracer(clock=FakeClock(tick=1.0))
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots()] == ["first", "second"]


class TestMaybeSpan:
    def test_none_obs_is_noop(self):
        with maybe_span(None, "anything"):
            pass  # must not raise, record nothing

    def test_live_obs_records(self):
        obs = Obs(clock=FakeClock(tick=1.0))
        with maybe_span(obs, "work", n=3):
            pass
        roots = obs.tracer.roots()
        assert roots[0].name == "work"
        assert roots[0].attrs == {"n": 3}


class TestObsTimed:
    def test_timed_observes_duration(self):
        obs = Obs(clock=FakeClock(tick=1.0))
        hist = obs.histogram("latency", buckets=(0.5, 2.0))
        with obs.timed(hist):
            pass
        assert hist.count() == 1
        assert hist.sum() == pytest.approx(1.0)

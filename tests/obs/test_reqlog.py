"""Unit tests for the canonical request log (:mod:`repro.obs.reqlog`)."""

from __future__ import annotations

import json

import pytest

from repro.fsutil import LineSink
from repro.obs.clock import FakeClock
from repro.obs.reqlog import (
    LAYERS,
    RequestLog,
    annotate,
    building,
    current_builder,
    encode_record,
    layer,
    read_jsonl,
    wire_scope,
)


def test_record_has_all_layers_and_canonical_fields():
    log = RequestLog(clock=FakeClock(tick=0.001))
    builder = log.start("/users/1/summary")
    builder.route = "/users/<id>/summary"
    record = builder.finish(200)
    assert set(record["layers"]) == set(LAYERS)
    assert record["status"] == 200
    assert record["seq"] == 0
    assert record["trace_id"] == "-"
    assert record["path"] == "/users/1/summary"
    # finish() is the commit: re-committing returns the same dict.
    assert log.commit(builder) is record


def test_ring_is_bounded_and_counts_drops():
    log = RequestLog(capacity=3, clock=FakeClock(tick=0.001))
    for i in range(10):
        log.start(f"/p/{i}").finish(200)
    records = log.records()
    assert len(records) == 3
    assert [r["path"] for r in records] == ["/p/7", "/p/8", "/p/9"]
    assert [r["seq"] for r in records] == [7, 8, 9]
    stats = log.stats()
    assert stats == {"capacity": 3, "size": 3, "total": 10, "dropped": 7}


def test_tail_filters_by_route_status_and_latency():
    clock = FakeClock()
    log = RequestLog(clock=clock)
    for status, route, seconds in (
        (200, "/a", 0.01),
        (429, "/a", 0.0),
        (200, "/b", 0.5),
        (200, "/a", 0.5),
    ):
        builder = log.start(route)
        builder.route = route
        clock.advance(seconds)
        builder.finish(status)
    assert len(log.tail(10)) == 4
    assert [r["status"] for r in log.tail(10, route="/a")] == [200, 429, 200]
    assert [r["route"] for r in log.tail(10, status=429)] == ["/a"]
    slow = log.tail(10, min_seconds=0.4)
    assert [(r["route"], r["total_s"]) for r in slow] == [
        ("/b", 0.5),
        ("/a", 0.5),
    ]
    assert len(log.tail(1, route="/a")) == 1


def test_layer_and_annotate_are_noops_outside_a_request():
    # Must not raise and must not record anything.
    with layer("handler"):
        pass
    annotate(cache="hit")
    assert current_builder() is None


def test_layer_times_into_the_ambient_builder():
    clock = FakeClock()
    log = RequestLog(clock=clock)
    builder = log.start("/x")
    with building(builder):
        with layer("handler"):
            clock.advance(0.25)
            with layer("store"):
                clock.advance(0.1)
    record = builder.finish(200)
    assert record["layers"]["handler"] == pytest.approx(0.35)
    assert record["layers"]["store"] == pytest.approx(0.1)
    assert record["layers"]["cache"] == 0.0


def test_annotate_rejects_unknown_fields():
    log = RequestLog(clock=FakeClock())
    with building(log.start("/x")):
        with pytest.raises(AttributeError):
            annotate(nonsense=True)
        with pytest.raises(AttributeError):
            annotate(layers={})  # structural slots are not annotatable


def test_wire_scope_defers_commit_and_folds_wire_facts():
    clock = FakeClock()
    log = RequestLog(clock=clock)
    with wire_scope(trace_id="cafe01", span_id=7) as wire:
        builder = log.start("/x")
        # Dispatch-side finish defers: nothing committed yet.
        assert builder.finish(200) is None
        assert not builder.committed
        record = wire.commit(
            499, bytes_out=42, serialize_seconds=0.01, write_seconds=0.02
        )
    assert record["status"] == 499
    assert record["bytes_out"] == 42
    assert record["trace_id"] == "cafe01"
    assert record["span_id"] == 7
    assert record["layers"]["serialize"] == pytest.approx(0.01)
    assert record["layers"]["write"] == pytest.approx(0.02)
    assert log.records() == [record]


def test_wire_scope_exit_commits_abandoned_builders():
    # A socket error can escape between dispatch and the explicit
    # commit; the scope's exit must still publish exactly one record.
    log = RequestLog(clock=FakeClock())
    with pytest.raises(OSError):
        with wire_scope():
            builder = log.start("/x")
            builder.finish(200)
            raise OSError("client went away")
    assert len(log.records()) == 1
    assert log.records()[0]["status"] == 200


def test_wire_commit_without_builder_returns_none():
    with wire_scope() as wire:
        assert wire.commit(200) is None


def test_same_sequence_encodes_byte_identically():
    def run() -> bytes:
        clock = FakeClock(tick=0.0005)
        log = RequestLog(clock=clock)
        lines = []
        for i in range(5):
            builder = log.start(f"/p/{i % 2}")
            builder.route = "/p/<id>"
            with building(builder):
                with layer("handler"):
                    clock.advance(0.01 * i)
                annotate(cache="hit" if i % 2 else "miss")
            lines.append(encode_record(builder.finish(200 if i else 429)))
        return b"\n".join(lines)

    assert run() == run()


def test_jsonl_sink_appends_every_record(tmp_path):
    path = tmp_path / "req.jsonl"
    log = RequestLog(
        capacity=2, clock=FakeClock(tick=0.001), jsonl_path=path
    )
    for i in range(5):
        log.start(f"/p/{i}").finish(200)
    log.close()
    # The ring dropped 3; the sink saw all 5.
    records = list(read_jsonl(path))
    assert [r["seq"] for r in records] == [0, 1, 2, 3, 4]


def test_read_jsonl_skips_torn_tail(tmp_path):
    path = tmp_path / "req.jsonl"
    with LineSink(path) as sink:
        sink.write_line(json.dumps({"seq": 0}))
        sink.write_line(json.dumps({"seq": 1}))
    with open(path, "ab") as handle:
        handle.write(b'{"seq": 2, "tru')  # crash mid-append
    assert [r["seq"] for r in read_jsonl(path)] == [0, 1]


def test_line_sink_reopens_after_close(tmp_path):
    path = tmp_path / "lines.jsonl"
    sink = LineSink(path)
    sink.write_line(b"a")
    sink.close()
    sink.write_line(b"b")
    sink.close()
    assert path.read_bytes() == b"a\nb\n"

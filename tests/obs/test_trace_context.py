"""TraceContext: seeded ids, span-id sequences, env/header codecs."""

import pytest

from repro.obs import TRACE_ENV_VAR, TRACE_HEADER, FakeClock, Obs, TraceContext
from repro.obs.trace_context import parse_trace_value


class TestTraceIds:
    def test_seeded_trace_id_is_deterministic(self):
        a = TraceContext.new(seed=1603)
        b = TraceContext.new(seed=1603)
        assert a.trace_id == b.trace_id
        assert len(a.trace_id) == 16
        int(a.trace_id, 16)  # valid hex

    def test_different_seeds_differ(self):
        assert (
            TraceContext.new(seed=1).trace_id
            != TraceContext.new(seed=2).trace_id
        )

    def test_unseeded_trace_ids_are_random(self):
        assert TraceContext.new().trace_id != TraceContext.new().trace_id


class TestSpanIds:
    def test_sequence_starts_at_one(self):
        ctx = TraceContext.new(seed=1)
        assert [ctx.next_span_id() for _ in range(3)] == [1, 2, 3]

    def test_joined_context_offsets_sequence(self):
        root = TraceContext.new(seed=1)
        parent_id = root.next_span_id()
        child = TraceContext.joined(root.trace_id, parent_id)
        assert child.trace_id == root.trace_id
        assert child.parent_span_id == parent_id
        # Child ids land in their own block: no collision with the
        # root's sequence for any realistic span count.
        child_ids = [child.next_span_id() for _ in range(1000)]
        root_ids = [root.next_span_id() for _ in range(1000)]
        assert not set(child_ids) & set(root_ids)

    def test_sibling_joins_get_disjoint_blocks(self):
        root = TraceContext.new(seed=1)
        a = TraceContext.joined(root.trace_id, root.next_span_id())
        b = TraceContext.joined(root.trace_id, root.next_span_id())
        a_ids = {a.next_span_id() for _ in range(1000)}
        b_ids = {b.next_span_id() for _ in range(1000)}
        assert not a_ids & b_ids


class TestWireFormat:
    def test_value_roundtrip(self):
        ctx = TraceContext.new(seed=7)
        assert parse_trace_value(ctx.value(parent_span_id=12)) == (
            ctx.trace_id,
            12,
        )

    @pytest.mark.parametrize(
        "bad",
        [None, "", "nocolon", ":5", "zz!!:5", "abc123:", "abc123:-1",
         "abc123:x"],
    )
    def test_malformed_values_parse_to_none(self, bad):
        assert parse_trace_value(bad) is None

    def test_env_roundtrip(self):
        env: dict = {}
        ctx = TraceContext.new(seed=7)
        ctx.parent_span_id = 3
        ctx.to_env(env)
        assert env[TRACE_ENV_VAR] == f"{ctx.trace_id}:3"
        joined = TraceContext.from_env(env)
        assert joined is not None
        assert joined.trace_id == ctx.trace_id
        assert joined.parent_span_id == 3

    def test_from_env_missing_or_garbled_is_none(self):
        assert TraceContext.from_env({}) is None
        assert TraceContext.from_env({TRACE_ENV_VAR: "garbage"}) is None

    def test_from_header(self):
        ctx = TraceContext.from_header("00aa11bb22cc33dd:9")
        assert ctx is not None
        assert (ctx.trace_id, ctx.parent_span_id) == ("00aa11bb22cc33dd", 9)
        assert TraceContext.from_header("???") is None

    def test_header_name_is_stable(self):
        # The wire contract other components (client, server) key off.
        assert TRACE_HEADER == "X-Repro-Trace"
        assert TRACE_ENV_VAR == "REPRO_TRACE"


class TestTracerIntegration:
    def test_spans_receive_sequential_ids(self):
        obs = Obs(clock=FakeClock(tick=1.0), trace=TraceContext.new(seed=5))
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                pass
        assert outer.span_id == 1
        assert outer.parent_span_id == 0
        assert inner.span_id == 2
        assert inner.parent_span_id == 1

    def test_explicit_parent_override(self):
        obs = Obs(clock=FakeClock(tick=1.0), trace=TraceContext.new(seed=5))
        with obs.span("server", parent_span_id=41) as span:
            pass
        assert span.parent_span_id == 41

    def test_joined_context_roots_under_remote_parent(self):
        root = TraceContext.new(seed=5)
        joined = TraceContext.joined(root.trace_id, 7)
        obs = Obs(clock=FakeClock(tick=1.0), trace=joined)
        with obs.span("child-root") as span:
            pass
        assert span.parent_span_id == 7

    def test_no_context_leaves_ids_unset(self):
        obs = Obs(clock=FakeClock(tick=1.0))
        with obs.span("plain") as span:
            pass
        assert span.span_id is None
        snap = span.snapshot()
        assert "span_id" not in snap  # byte layout unchanged without trace

    def test_attach_reparents_and_assigns_ids(self):
        from repro.obs import Span

        obs = Obs(clock=FakeClock(tick=1.0), trace=TraceContext.new(seed=5))
        foreign = Span(name="worker", start=100.0, end=101.5)
        with obs.span("coordinator") as parent:
            obs.tracer.attach(foreign, rebase=True)
        assert foreign.parent_span_id == parent.span_id
        assert foreign.span_id == 2
        assert parent.children == [foreign]
        # rebase=True translated the subtree onto our clock.
        assert foreign.end <= obs.clock()
        assert foreign.duration == pytest.approx(1.5)

"""The ``/metrics`` route and server-side request accounting."""

import urllib.request

import pytest

from repro.steamapi.http_client import HttpTransport
from repro.steamapi.http_server import serve
from repro.steamapi.service import DEFAULT_API_KEY, SteamApiService


@pytest.fixture(scope="module")
def server(small_world):
    service = SteamApiService.from_world(small_world)
    with serve(service) as running:
        yield running


def _scrape(server) -> tuple[str, str]:
    with urllib.request.urlopen(server.base_url + "/metrics") as resp:
        return resp.read().decode("utf-8"), resp.headers["Content-Type"]


class TestMetricsRoute:
    def test_prometheus_exposition(self, server, small_world):
        sid = int(small_world.dataset.accounts.steamids()[0])
        HttpTransport(server.base_url).request(
            "/ISteamUser/GetPlayerSummaries/v2",
            {"key": DEFAULT_API_KEY, "steamids": str(sid)},
        )
        text, content_type = _scrape(server)
        assert content_type == "text/plain; version=0.0.4"
        assert "# TYPE http_requests counter" in text
        assert (
            'http_requests_total{path="/ISteamUser/GetPlayerSummaries/v2"'
            in text
        )
        assert "http_request_seconds_bucket" in text

    def test_scrape_counts_itself(self, server):
        first, _ = _scrape(server)
        second, _ = _scrape(server)
        # The second scrape sees the first one's accounting.
        assert 'http_requests_total{path="/metrics",status="200"}' in second

    def test_error_statuses_labelled(self, server):
        try:
            urllib.request.urlopen(server.base_url + "/unknown/endpoint")
        except urllib.error.HTTPError:
            pass
        text, _ = _scrape(server)
        assert 'path="/unknown/endpoint",status="404"' in text

    def test_server_requests_metric_when_service_instrumented(
        self, small_world
    ):
        from repro.obs import Obs

        obs = Obs()
        service = SteamApiService.from_world(small_world, obs=obs)
        with serve(service, obs=obs) as running:
            sid = int(small_world.dataset.accounts.steamids()[0])
            HttpTransport(running.base_url).request(
                "/ISteamUser/GetPlayerSummaries/v2",
                {"key": DEFAULT_API_KEY, "steamids": str(sid)},
            )
            text, _ = _scrape(running)
        assert (
            'steamapi_server_requests_total{endpoint="GetPlayerSummaries"} 1'
            in text
        )


class TestAccessLog:
    def test_silent_by_default(self, server, caplog):
        import logging

        with caplog.at_level(logging.INFO, logger="repro.steamapi.http"):
            _scrape(server)
        assert not caplog.records

    def test_logs_when_enabled(self, small_world, caplog):
        import logging
        import time

        service = SteamApiService.from_world(small_world)
        with serve(service, access_log=True) as running:
            with caplog.at_level(
                logging.INFO, logger="repro.steamapi.http"
            ):
                _scrape(running)
                # The handler logs after responding, on the server
                # thread — give it a beat to land.
                deadline = time.monotonic() + 2.0
                while not caplog.records and time.monotonic() < deadline:
                    time.sleep(0.01)
        messages = [r.getMessage() for r in caplog.records]
        assert any("GET /metrics -> 200" in m for m in messages)

    def test_access_log_carries_the_trace_id(self, caplog):
        import logging
        import time

        from repro.obs.trace_context import TRACE_HEADER
        from repro.steamapi.http_server import serve_dispatch

        with serve_dispatch(
            lambda path, params: {"ok": True}, access_log=True
        ) as running:
            with caplog.at_level(
                logging.INFO, logger="repro.steamapi.http"
            ):
                request = urllib.request.Request(
                    running.base_url + "/ping",
                    headers={TRACE_HEADER: "deadbeefcafe0123:5"},
                )
                urllib.request.urlopen(request).read()
                urllib.request.urlopen(running.base_url + "/ping").read()
                deadline = time.monotonic() + 2.0
                while len(caplog.records) < 2 and (
                    time.monotonic() < deadline
                ):
                    time.sleep(0.01)
        messages = [r.getMessage() for r in caplog.records]
        assert any(
            "GET /ping -> 200 trace=deadbeefcafe0123" in m
            for m in messages
        )
        # An untraced request still logs, with the "-" placeholder.
        assert any("GET /ping -> 200 trace=-" in m for m in messages)

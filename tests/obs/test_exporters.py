"""Prometheus text, JSON snapshots, console summaries, bench JSON."""

import json

import pytest

from repro.obs import (
    FakeClock,
    MetricsRegistry,
    Obs,
    bench_metric,
    console_summary,
    to_json,
    to_prometheus,
    write_bench_json,
)


@pytest.fixture()
def registry():
    reg = MetricsRegistry()
    reg.counter(
        "steamapi_requests", "requests", ("endpoint",)
    ).inc(3, endpoint="GetFriendList")
    reg.gauge("throughput", "req/s").set(41.5)
    reg.histogram("latency", "seconds", buckets=(0.1, 1.0)).observe(0.05)
    return reg


class TestPrometheus:
    def test_counter_gets_total_suffix(self, registry):
        text = to_prometheus(registry)
        assert (
            'steamapi_requests_total{endpoint="GetFriendList"} 3' in text
        )
        assert "# TYPE steamapi_requests counter" in text

    def test_gauge_plain(self, registry):
        assert "throughput 41.5" in to_prometheus(registry)

    def test_histogram_cumulative_buckets(self, registry):
        text = to_prometheus(registry)
        assert 'latency_bucket{le="0.1"} 1' in text
        assert 'latency_bucket{le="1.0"} 1' in text
        assert 'latency_bucket{le="+Inf"} 1' in text
        assert "latency_sum 0.05" in text
        assert "latency_count 1" in text

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestJson:
    def test_stable_layout(self):
        snap = {"b": 1, "a": {"z": 2, "y": 3}}
        text = to_json(snap)
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text) == snap


class TestConsoleSummary:
    def test_sections(self):
        obs = Obs(clock=FakeClock(tick=1.0))
        obs.counter("requests").inc(7)
        with obs.span("crawl"):
            pass
        text = obs.summary()
        assert "== metrics ==" in text
        assert "requests" in text
        assert "== spans ==" in text
        assert "crawl" in text

    def test_empty_snapshot(self):
        text = console_summary({"metrics": {}, "span_totals": {}})
        assert "(none)" in text


class TestObsWrite:
    def test_write_roundtrip(self, tmp_path):
        obs = Obs(clock=FakeClock(tick=1.0))
        obs.counter("requests").inc()
        path = obs.write(tmp_path / "metrics.json")
        snap = json.loads(path.read_text())
        assert snap["schema_version"] == 1
        assert snap["metrics"]["requests"]["series"][0]["value"] == 1


class TestBenchJson:
    def test_writes_schema(self, tmp_path):
        path = write_bench_json(
            tmp_path,
            "crawler_throughput",
            [bench_metric("requests", 1000, "requests")],
            seed=31,
            n_users=8000,
        )
        assert path.name == "BENCH_crawler_throughput.json"
        doc = json.loads(path.read_text())
        assert doc["schema_version"] == 1
        assert doc["benchmark"] == "crawler_throughput"
        assert doc["world"] == {"seed": 31, "n_users": 8000}
        assert doc["metrics"] == [
            {"name": "requests", "value": 1000, "unit": "requests"}
        ]
        assert isinstance(doc["git_rev"], str) and doc["git_rev"]

    def test_rejects_malformed_metric(self, tmp_path):
        with pytest.raises(ValueError):
            write_bench_json(
                tmp_path, "bad", [{"name": "x", "value": 1}]
            )

"""Prometheus text, JSON snapshots, console summaries, bench JSON."""

import json

import pytest

from repro.obs import (
    FakeClock,
    MetricsRegistry,
    Obs,
    bench_metric,
    console_summary,
    to_json,
    to_prometheus,
    write_bench_json,
)


@pytest.fixture()
def registry():
    reg = MetricsRegistry()
    reg.counter(
        "steamapi_requests", "requests", ("endpoint",)
    ).inc(3, endpoint="GetFriendList")
    reg.gauge("throughput", "req/s").set(41.5)
    reg.histogram("latency", "seconds", buckets=(0.1, 1.0)).observe(0.05)
    return reg


class TestPrometheus:
    def test_counter_gets_total_suffix(self, registry):
        text = to_prometheus(registry)
        assert (
            'steamapi_requests_total{endpoint="GetFriendList"} 3' in text
        )
        assert "# TYPE steamapi_requests counter" in text

    def test_gauge_plain(self, registry):
        assert "throughput 41.5" in to_prometheus(registry)

    def test_histogram_cumulative_buckets(self, registry):
        text = to_prometheus(registry)
        assert 'latency_bucket{le="0.1"} 1' in text
        assert 'latency_bucket{le="1.0"} 1' in text
        assert 'latency_bucket{le="+Inf"} 1' in text
        assert "latency_sum 0.05" in text
        assert "latency_count 1" in text

    def test_histogram_inf_bucket_and_cumulative_counts(self):
        """Regression: ``le`` counts must be running totals and the
        ``+Inf`` bucket must equal the series count, Prometheus-style,
        even when samples land in every bucket including overflow."""
        reg = MetricsRegistry()
        hist = reg.histogram("latency", "seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 2.0, 100.0):
            hist.observe(value)
        text = to_prometheus(reg)
        assert 'latency_bucket{le="0.1"} 1' in text
        assert 'latency_bucket{le="1.0"} 3' in text  # 1 + 2, cumulative
        assert 'latency_bucket{le="+Inf"} 5' in text  # == _count
        assert "latency_count 5" in text
        lines = [l for l in text.splitlines() if l.startswith("latency_bucket")]
        counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
        assert counts == sorted(counts), "bucket counts must be cumulative"

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestJson:
    def test_stable_layout(self):
        snap = {"b": 1, "a": {"z": 2, "y": 3}}
        text = to_json(snap)
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text) == snap


class TestConsoleSummary:
    def test_sections(self):
        obs = Obs(clock=FakeClock(tick=1.0))
        obs.counter("requests").inc(7)
        with obs.span("crawl"):
            pass
        text = obs.summary()
        assert "== metrics ==" in text
        assert "requests" in text
        assert "== spans ==" in text
        assert "crawl" in text

    def test_empty_snapshot(self):
        text = console_summary({"metrics": {}, "span_totals": {}})
        assert "(none)" in text


class TestObsWrite:
    def test_write_roundtrip(self, tmp_path):
        obs = Obs(clock=FakeClock(tick=1.0))
        obs.counter("requests").inc()
        path = obs.write(tmp_path / "metrics.json")
        snap = json.loads(path.read_text())
        assert snap["schema_version"] == 2
        assert snap["run_id"] is None  # no TraceContext attached
        assert isinstance(snap["git_rev"], str) and snap["git_rev"]
        assert snap["metrics"]["requests"]["series"][0]["value"] == 1

    def test_run_id_is_trace_id(self, tmp_path):
        from repro.obs import TraceContext

        obs = Obs(
            clock=FakeClock(tick=1.0), trace=TraceContext.new(seed=31)
        )
        snap = obs.snapshot()
        assert snap["run_id"] == TraceContext.new(seed=31).trace_id


class TestBenchJson:
    def test_writes_schema(self, tmp_path):
        path = write_bench_json(
            tmp_path,
            "crawler_throughput",
            [bench_metric("requests", 1000, "requests")],
            seed=31,
            n_users=8000,
        )
        assert path.name == "BENCH_crawler_throughput.json"
        doc = json.loads(path.read_text())
        assert doc["schema_version"] == 1
        assert doc["benchmark"] == "crawler_throughput"
        assert doc["world"] == {"seed": 31, "n_users": 8000}
        assert doc["metrics"] == [
            {"name": "requests", "value": 1000, "unit": "requests"}
        ]
        assert isinstance(doc["git_rev"], str) and doc["git_rev"]

    def test_run_id_from_ambient_trace(self, tmp_path, monkeypatch):
        from repro.obs import TRACE_ENV_VAR

        monkeypatch.setenv(TRACE_ENV_VAR, "00aa11bb22cc33dd:7")
        path = write_bench_json(
            tmp_path, "traced", [bench_metric("n", 1, "requests")]
        )
        assert json.loads(path.read_text())["run_id"] == "00aa11bb22cc33dd"

    def test_explicit_run_id_wins(self, tmp_path):
        path = write_bench_json(
            tmp_path,
            "traced",
            [bench_metric("n", 1, "requests")],
            run_id="feedfacefeedface",
        )
        assert json.loads(path.read_text())["run_id"] == "feedfacefeedface"

    def test_rejects_malformed_metric(self, tmp_path):
        with pytest.raises(ValueError):
            write_bench_json(
                tmp_path, "bad", [{"name": "x", "value": 1}]
            )


class TestStatusClassBreakdown:
    def test_summary_rolls_up_status_labelled_counters(self):
        obs = Obs(clock=FakeClock(tick=1.0))
        requests = obs.counter(
            "http_requests", labelnames=("path", "status")
        )
        requests.inc(5, path="/a", status=200)
        requests.inc(2, path="/b", status=200)
        requests.inc(1, path="/a", status=404)
        requests.inc(3, path="/a", status=499)
        requests.inc(1, path="/a", status=503)
        text = obs.summary()
        assert "== status classes ==" in text
        section = text.split("== status classes ==")[1]
        section = section.split("== spans ==")[0]
        assert "2xx" in section and "7" in section
        assert "4xx" in section
        # The abort sentinel gets its own line, spelled out — it is
        # not folded into 4xx.
        assert "499 (aborted mid-body)" in section
        assert "5xx" in section

    def test_no_section_without_status_counters(self):
        obs = Obs(clock=FakeClock(tick=1.0))
        obs.counter("requests").inc()
        assert "== status classes ==" not in obs.summary()

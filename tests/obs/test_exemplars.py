"""Histogram exemplars: retention, snapshots, OpenMetrics rendering."""

from __future__ import annotations

from repro.obs import Obs
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.exporters import to_prometheus


def test_histogram_retains_last_exemplar_per_bucket():
    h = Histogram("lat", buckets=(0.1, 1.0), exemplars=True)
    h.observe(0.05, exemplar={"trace_id": "aaa"})
    h.observe(0.07, exemplar={"trace_id": "bbb"})  # same bucket: replaces
    h.observe(0.5, exemplar={"trace_id": "ccc"})
    h.observe(5.0)  # no exemplar attached: +Inf slot stays empty
    assert h.exemplar(0) == (0.07, {"trace_id": "bbb"})
    assert h.exemplar(1) == (0.5, {"trace_id": "ccc"})
    assert h.exemplar(2) is None


def test_exemplars_ignored_when_disabled():
    h = Histogram("lat", buckets=(0.1,))
    h.observe(0.05, exemplar={"trace_id": "aaa"})
    assert h.exemplar(0) is None
    # And the snapshot keeps its pre-exemplar shape byte for byte.
    assert "exemplars" not in h.snapshot()["series"][0]


def test_snapshot_carries_exemplars_when_enabled():
    h = Histogram("lat", buckets=(0.1,), exemplars=True)
    h.observe(0.05, exemplar={"trace_id": "aaa", "seq": "3"})
    series = h.snapshot()["series"][0]
    assert series["exemplars"] == [
        {"value": 0.05, "labels": {"trace_id": "aaa", "seq": "3"}},
        None,
    ]


def test_bound_histogram_records_exemplars():
    h = Histogram("lat", buckets=(0.1,), labelnames=("path",), exemplars=True)
    bound = h.labels(path="/a")
    bound.observe(0.05, exemplar={"trace_id": "xyz"})
    assert h.exemplar(0, path="/a") == (0.05, {"trace_id": "xyz"})


def test_prometheus_renders_openmetrics_exemplar_syntax():
    obs = Obs()
    h = obs.histogram("lat", "latency", buckets=(0.1, 1.0), exemplars=True)
    h.observe(0.05, exemplar={"trace_id": "abc", "seq": "0"})
    h.observe(0.5)
    text = obs.to_prometheus()
    assert 'lat_bucket{le="0.1"} 1 # {seq="0",trace_id="abc"} 0.05' in text
    # Buckets without a retained exemplar render plain (and cumulative).
    assert 'lat_bucket{le="1.0"} 2\n' in text
    assert 'lat_bucket{le="+Inf"} 2\n' in text


def test_merge_ignores_exemplars():
    source = MetricsRegistry()
    h = source.histogram("lat", buckets=(0.1,), exemplars=True)
    h.observe(0.05, exemplar={"trace_id": "abc"})
    target = MetricsRegistry()
    target.merge(source.snapshot())
    merged = target.get("lat")
    assert merged.count() == 1
    assert merged.exemplar(0) is None


def test_registry_upgrade_to_exemplars_on_reregistration():
    registry = MetricsRegistry()
    plain = registry.histogram("lat", buckets=(0.1,))
    again = registry.histogram("lat", buckets=(0.1,), exemplars=True)
    assert again is plain
    assert plain.exemplars

"""The determinism contract: same seed + fake clock → identical bytes.

Acceptance criteria from DESIGN.md §7: two crawls of the same world
with the same fault plan and a :class:`FakeClock` must serialize to
byte-identical JSON snapshots, and a chaos crawl's snapshot must agree
with the :class:`CrawlResult` fault counters.
"""

import pytest

from repro.crawler.retry import RetryPolicy
from repro.crawler.runner import run_full_crawl
from repro.obs import FakeClock, Obs
from repro.steamapi.faults import (
    FaultInjectingTransport,
    FaultPlan,
    FaultSpec,
)
from repro.steamapi.service import SteamApiService
from repro.steamapi.transport import InProcessTransport

CHAOS_PLAN = FaultPlan(
    seed=1337,
    default=FaultSpec(
        rate_limit=0.02,
        server_error=0.02,
        timeout=0.01,
        malformed=0.01,
        retry_after=(0.001, 0.01),
        burst=2,
    ),
)


def _chaos_crawl(world):
    obs = Obs(clock=FakeClock(tick=0.001))
    transport = FaultInjectingTransport(
        InProcessTransport(SteamApiService.from_world(world)),
        CHAOS_PLAN,
        obs=obs,
    )
    result = run_full_crawl(
        transport,
        retry=RetryPolicy(
            sleeper=lambda s: None, max_attempts=30, jitter=True
        ),
        obs=obs,
    )
    return result, obs


class TestSnapshotDeterminism:
    def test_two_chaos_crawls_byte_identical(self, small_world):
        _, obs_a = _chaos_crawl(small_world)
        _, obs_b = _chaos_crawl(small_world)
        assert obs_a.to_json() == obs_b.to_json()
        assert obs_a.to_prometheus() == obs_b.to_prometheus()

    def test_snapshot_matches_result_fault_counts(self, small_world):
        result, obs = _chaos_crawl(small_world)
        assert result.n_injected_faults > 0
        counter = obs.registry.get("steamapi_injected_faults")
        for kind, count in result.injected_faults.items():
            assert counter.value(kind=kind) == count, kind
        # ... and nothing beyond what the result reports.
        snapped = {
            series["labels"][0]: series["value"]
            for series in counter.snapshot()["series"]
        }
        assert snapped == {
            k: v for k, v in result.injected_faults.items() if v
        }

    def test_request_counters_match_session_totals(self, small_world):
        result, obs = _chaos_crawl(small_world)
        requests = obs.registry.get("steamapi_requests")
        total = sum(
            series["value"]
            for series in requests.snapshot()["series"]
        )
        assert total == result.requests_made
        attempts = obs.registry.get("steamapi_attempts")
        assert attempts.value() == result.attempts
        latency = obs.registry.get("steamapi_request_seconds")
        total_observed = sum(
            series["count"]
            for series in latency.snapshot()["series"]
        )
        assert total_observed == result.requests_made

    def test_span_tree_covers_all_phases(self, small_world):
        _, obs = _chaos_crawl(small_world)
        totals = obs.tracer.aggregate()
        for name in (
            "crawl",
            "phase:profiles",
            "phase:storefront",
            "phase:details",
            "phase:groups",
            "phase:achievements",
            "assemble:dataset",
        ):
            assert totals[name]["count"] == 1, name

    def test_retry_counters_consistent(self, small_world):
        result, obs = _chaos_crawl(small_world)
        retried = obs.registry.get("crawler_retries")
        total_retries = sum(
            series["value"] for series in retried.snapshot()["series"]
        )
        assert total_retries == result.retries
        assert result.retries >= result.n_injected_faults


class TestGenerationSpans:
    def test_generate_stage_spans(self, small_world):
        from repro import SteamWorld, WorldConfig

        obs = Obs(clock=FakeClock(tick=0.001))
        SteamWorld.generate(
            WorldConfig(n_users=1_000, seed=5), obs=obs
        )
        totals = obs.tracer.aggregate()
        for name in (
            "generate",
            "generate:geography",
            "generate:friends",
            "generate:assemble",
        ):
            assert totals[name]["count"] == 1, name

    def test_analysis_stage_spans(self, small_world):
        from repro import SteamStudy

        obs = Obs(clock=FakeClock(tick=0.001))
        study = SteamStudy(
            world=small_world, _dataset=small_world.dataset
        )
        study.run(include_table4=False, obs=obs)
        totals = obs.tracer.aggregate()
        assert totals["analyze"]["count"] == 1
        assert totals["analyze:table3_percentiles"]["count"] == 1
        assert totals["analyze:fig11_homophily"]["count"] == 1


class TestCheckpointMetrics:
    def test_save_and_load_timed(self, tmp_path):
        from repro.crawler.checkpoint import CrawlCheckpoint

        obs = Obs(clock=FakeClock(tick=0.001))
        path = tmp_path / "ckpt.json"
        ckpt = CrawlCheckpoint(path=path, obs=obs)
        ckpt.save()
        CrawlCheckpoint.load(path, obs=obs)
        assert obs.registry.get("crawler_checkpoint_saves").value() == 1
        assert (
            obs.registry.get("crawler_checkpoint_save_seconds").count()
            == 1
        )
        assert (
            obs.registry.get("crawler_checkpoint_load_seconds").count()
            == 1
        )


class TestTracedCrawlDeterminism:
    """End-to-end trace determinism: the same seeded chaos crawl under a
    FakeClock and a seeded TraceContext writes byte-identical Chrome
    traces — span names, ids, timings, and retry spans included."""

    def _traced_chaos_crawl(self, world):
        from repro.obs import TraceContext

        obs = Obs(
            clock=FakeClock(tick=0.001),
            trace=TraceContext.new(seed=1337),
        )
        transport = FaultInjectingTransport(
            InProcessTransport(SteamApiService.from_world(world)),
            CHAOS_PLAN,
            obs=obs,
        )
        result = run_full_crawl(
            transport,
            retry=RetryPolicy(
                sleeper=lambda s: None, max_attempts=30, jitter=True
            ),
            obs=obs,
        )
        return result, obs

    def test_chrome_trace_bytes_identical_across_runs(
        self, small_world, tmp_path
    ):
        _, obs_a = self._traced_chaos_crawl(small_world)
        _, obs_b = self._traced_chaos_crawl(small_world)
        a = obs_a.write_trace(tmp_path / "a.trace.json")
        b = obs_b.write_trace(tmp_path / "b.trace.json")
        assert a.read_bytes() == b.read_bytes()

    def test_trace_covers_phases_and_retries(self, small_world):
        import json

        from repro.obs import to_chrome_trace

        result, obs = self._traced_chaos_crawl(small_world)
        assert result.retries > 0  # the chaos plan actually bit
        doc = to_chrome_trace(obs.snapshot())
        names = {
            e["name"] for e in doc["traceEvents"] if e["ph"] == "X"
        }
        assert "crawl" in names
        assert "phase:profiles" in names
        assert any(n.startswith("retry:") for n in names)
        # Every event carries an id from the single seeded trace.
        ids = [
            e["args"]["span_id"]
            for e in doc["traceEvents"]
            if e["ph"] == "X"
        ]
        assert len(set(ids)) == len(ids)
        json.dumps(doc)  # remains serializable end to end

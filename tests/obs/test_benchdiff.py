"""The bench-regression gate: unit rules, thresholds, edge cases."""

import json

import pytest

from repro.obs.benchdiff import (
    compare_bench,
    compare_dirs,
    render_diffs,
)


def _doc(name="crawl", seconds=1.0, world=None, extra=()):
    return {
        "schema_version": 1,
        "benchmark": name,
        "git_rev": "abc1234",
        "world": world or {"seed": 31, "n_users": 8000},
        "metrics": [
            {"name": "crawl_seconds", "value": seconds, "unit": "s"},
            *extra,
        ],
    }


class TestUnitRules:
    def test_small_slowdown_within_tolerance_is_ok(self):
        diff = compare_bench(_doc(seconds=1.2), _doc(seconds=1.0), {})
        (m,) = diff.metrics
        assert m.status == "ok"
        assert m.ratio == pytest.approx(1.2)

    def test_two_x_latency_regression_fails(self):
        diff = compare_bench(_doc(seconds=2.0), _doc(seconds=1.0), {})
        (m,) = diff.metrics
        assert m.status == "regression"
        assert diff.regressions == [m]

    def test_throughput_drop_fails(self):
        new = _doc(extra=[{"name": "rps", "value": 100.0, "unit": "requests/s"}])
        base = _doc(extra=[{"name": "rps", "value": 250.0, "unit": "requests/s"}])
        diff = compare_bench(new, base, {})
        rps = [m for m in diff.metrics if m.name == "rps"][0]
        assert rps.status == "regression"

    def test_throughput_gain_is_ok(self):
        new = _doc(extra=[{"name": "rps", "value": 500.0, "unit": "requests/s"}])
        base = _doc(extra=[{"name": "rps", "value": 250.0, "unit": "requests/s"}])
        diff = compare_bench(new, base, {})
        rps = [m for m in diff.metrics if m.name == "rps"][0]
        assert rps.status == "ok"

    def test_count_units_are_informational(self):
        new = _doc(extra=[{"name": "requests", "value": 99999, "unit": "requests"}])
        base = _doc(extra=[{"name": "requests", "value": 10, "unit": "requests"}])
        diff = compare_bench(new, base, {})
        count = [m for m in diff.metrics if m.name == "requests"][0]
        assert count.status == "info"

    def test_speedup_ratio_is_informational(self):
        new = _doc(extra=[{"name": "speedup", "value": 0.1, "unit": "x"}])
        base = _doc(extra=[{"name": "speedup", "value": 3.0, "unit": "x"}])
        diff = compare_bench(new, base, {})
        x = [m for m in diff.metrics if m.name == "speedup"][0]
        assert x.status == "info"


class TestThresholds:
    def test_metric_override_loosens(self):
        thresholds = {"crawl_seconds": {"max_ratio": 3.0}}
        diff = compare_bench(
            _doc(seconds=2.0), _doc(seconds=1.0), thresholds
        )
        assert diff.metrics[0].status == "ok"

    def test_qualified_override_wins_over_bare(self):
        thresholds = {
            "crawl_seconds": {"max_ratio": 3.0},
            "crawl.crawl_seconds": {"max_ratio": 1.1},
        }
        diff = compare_bench(
            _doc(seconds=1.5), _doc(seconds=1.0), thresholds
        )
        assert diff.metrics[0].status == "regression"

    def test_gate_false_exempts(self):
        thresholds = {"crawl_seconds": {"gate": False}}
        diff = compare_bench(
            _doc(seconds=100.0), _doc(seconds=1.0), thresholds
        )
        assert diff.metrics[0].status == "info"


class TestEdgeCases:
    def test_world_mismatch_skips_gating(self):
        diff = compare_bench(
            _doc(seconds=100.0, world={"seed": 1, "n_users": 100}),
            _doc(seconds=1.0),
            {},
        )
        assert diff.metrics[0].status == "info"
        assert "world mismatch" in diff.note
        assert not diff.regressions

    def test_missing_baseline_document_warns_not_fails(self):
        diff = compare_bench(_doc(seconds=100.0), None, {})
        assert diff.note.startswith("no baseline")
        assert all(m.status == "missing-baseline" for m in diff.metrics)
        assert not diff.regressions

    def test_metric_absent_from_baseline(self):
        new = _doc(extra=[{"name": "fresh", "value": 1.0, "unit": "s"}])
        diff = compare_bench(new, _doc(), {})
        fresh = [m for m in diff.metrics if m.name == "fresh"][0]
        assert fresh.status == "missing-baseline"

    def test_zero_baseline_has_no_ratio(self):
        diff = compare_bench(_doc(seconds=1.0), _doc(seconds=0.0), {})
        assert diff.metrics[0].status == "info"
        assert diff.metrics[0].ratio is None


class TestCompareDirs:
    def _write(self, directory, doc):
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_{doc['benchmark']}.json"
        path.write_text(json.dumps(doc))
        return path

    def test_directory_pairing(self, tmp_path):
        new_dir, base_dir = tmp_path / "new", tmp_path / "base"
        self._write(new_dir, _doc("alpha", seconds=1.0))
        self._write(new_dir, _doc("beta", seconds=5.0))
        self._write(base_dir, _doc("alpha", seconds=1.0))
        self._write(base_dir, _doc("beta", seconds=1.0))
        diffs = compare_dirs(new_dir, base_dir)
        by_name = {d.benchmark: d for d in diffs}
        assert not by_name["alpha"].regressions
        assert by_name["beta"].regressions

    def test_single_file_new(self, tmp_path):
        new_dir, base_dir = tmp_path / "new", tmp_path / "base"
        path = self._write(new_dir, _doc("alpha", seconds=3.0))
        self._write(base_dir, _doc("alpha", seconds=1.0))
        diffs = compare_dirs(path, base_dir)
        assert len(diffs) == 1 and diffs[0].regressions

    def test_empty_new_dir_raises(self, tmp_path):
        (tmp_path / "new").mkdir()
        with pytest.raises(FileNotFoundError):
            compare_dirs(tmp_path / "new", tmp_path)

    def test_render_mentions_regressions(self, tmp_path):
        diffs = [compare_bench(_doc(seconds=2.0), _doc(seconds=1.0), {})]
        text = render_diffs(diffs)
        assert "[REG]" in text
        assert "1 regression(s)" in text


class TestBaselinesStayGreen:
    def test_checked_in_baselines_diff_clean_against_themselves(self):
        """The CI gate must pass when nothing changed: every checked-in
        BENCH_*.json compared against itself yields zero regressions."""
        from pathlib import Path

        results = Path(__file__).resolve().parents[2] / "benchmarks/results"
        if not any(results.glob("BENCH_*.json")):  # pragma: no cover
            pytest.skip("no baselines checked in")
        diffs = compare_dirs(results, results)
        assert all(not d.regressions for d in diffs)

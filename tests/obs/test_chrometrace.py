"""Chrome-trace export: event mapping, track routing, determinism."""

import json

from repro.obs import (
    FakeClock,
    Obs,
    TraceContext,
    to_chrome_trace,
    write_chrome_trace,
)


def _sample_obs() -> Obs:
    obs = Obs(clock=FakeClock(tick=0.5), trace=TraceContext.new(seed=9))
    with obs.span("pipeline", users=100):
        with obs.span("crawl"):
            with obs.span(
                "http:/x", track="steamapi-server", status=200
            ):
                pass
    return obs


class TestEventMapping:
    def test_complete_events_with_micro_timestamps(self):
        doc = to_chrome_trace(_sample_obs().snapshot())
        events = {
            e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"
        }
        assert set(events) == {"pipeline", "crawl", "http:/x"}
        pipeline = events["pipeline"]
        # FakeClock tick 0.5s → microsecond integers, exact.
        assert pipeline["ts"] == 0
        assert pipeline["dur"] == 2_500_000
        assert pipeline["args"]["users"] == 100
        assert pipeline["args"]["span_id"] == 1
        assert pipeline["args"]["parent_span_id"] == 0

    def test_track_routes_to_own_pid_with_metadata(self):
        doc = to_chrome_trace(_sample_obs().snapshot())
        meta = {
            e["args"]["name"]: e["pid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M"
        }
        assert meta["main"] == 1
        assert meta["steamapi-server"] == 2
        events = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert events["crawl"]["pid"] == 1
        assert events["http:/x"]["pid"] == 2
        # 'track' is routing, not payload; 'status' rides along.
        assert "track" not in events["http:/x"]["args"]
        assert events["http:/x"]["args"]["status"] == 200

    def test_children_inherit_parent_track(self):
        obs = Obs(clock=FakeClock(tick=1.0))
        with obs.span("server-root", track="srv"):
            with obs.span("handler"):
                pass
        doc = to_chrome_trace(obs.snapshot())
        events = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert events["handler"]["pid"] == events["server-root"]["pid"]

    def test_trace_id_in_other_data(self):
        snap = _sample_obs().snapshot()
        doc = to_chrome_trace(snap)
        assert doc["otherData"]["trace_id"] == snap["run_id"]
        assert doc["otherData"]["trace_id"] == TraceContext.new(
            seed=9
        ).trace_id


class TestDeterminism:
    def test_same_seed_runs_byte_identical(self, tmp_path):
        a = write_chrome_trace(tmp_path / "a.json", _sample_obs().snapshot())
        b = write_chrome_trace(tmp_path / "b.json", _sample_obs().snapshot())
        assert a.read_bytes() == b.read_bytes()

    def test_output_is_valid_json(self, tmp_path):
        path = write_chrome_trace(
            tmp_path / "t.json", _sample_obs().snapshot()
        )
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"

"""Edge cases across subsystems: tiny worlds, empty relations, extremes."""

import dataclasses

import numpy as np
import pytest

from repro import SteamWorld, WorldConfig


class TestTinyWorld:
    """The minimum allowed population must survive every analysis."""

    @pytest.fixture(scope="class")
    def tiny(self):
        return SteamWorld.generate(WorldConfig(n_users=1_000, seed=1))

    def test_generates(self, tiny):
        assert tiny.dataset.n_users == 1_000

    def test_report_runs(self, tiny):
        from repro import SteamStudy

        study = SteamStudy(world=tiny, _dataset=tiny.dataset)
        report = study.run(include_table4=False, include_week_panel=False)
        assert "Table 3" in report.render()

    def test_crawl_roundtrip(self, tiny):
        from repro import SteamStudy

        study = SteamStudy(world=tiny, _dataset=tiny.dataset)
        crawled = study.crawl()
        assert crawled.dataset.n_users == 1_000
        assert np.array_equal(
            crawled.dataset.friend_counts(), tiny.dataset.friend_counts()
        )

    def test_week_panel_tiny_sample(self, tiny):
        panel = tiny.week_panel()
        assert len(panel.users) >= 1


class TestEmptyRelations:
    def test_friendless_dataset_analyses(self, small_dataset):
        from repro.core.homophily import neighbor_mean
        from repro.store.tables import FriendTable

        empty = FriendTable(
            u=np.empty(0, dtype=np.int32),
            v=np.empty(0, dtype=np.int32),
            day=np.empty(0, dtype=np.int32),
            n_users=small_dataset.n_users,
        )
        stripped = dataclasses.replace(small_dataset, friends=empty)
        assert stripped.friend_counts().sum() == 0
        avg = neighbor_mean(stripped, np.ones(stripped.n_users))
        assert np.all(np.isnan(avg))

    def test_empty_friend_graph_stats(self, small_dataset):
        from repro.core.graphstats import degree_assortativity
        from repro.store.tables import FriendTable

        empty = FriendTable(
            u=np.empty(0, dtype=np.int32),
            v=np.empty(0, dtype=np.int32),
            day=np.empty(0, dtype=np.int32),
            n_users=small_dataset.n_users,
        )
        stripped = dataclasses.replace(small_dataset, friends=empty)
        assert np.isnan(degree_assortativity(stripped))

    def test_sampling_on_empty_graph(self, small_dataset):
        from repro.core.sampling import snowball_sample
        from repro.store.tables import FriendTable

        empty = FriendTable(
            u=np.empty(0, dtype=np.int32),
            v=np.empty(0, dtype=np.int32),
            day=np.empty(0, dtype=np.int32),
            n_users=small_dataset.n_users,
        )
        stripped = dataclasses.replace(small_dataset, friends=empty)
        sample = snowball_sample(stripped, 100)
        assert len(sample) == 0


class TestConfigOverrides:
    def test_zero_triadic_closure_stays_clustered(self):
        """Clustering survives without explicit closure: repeated
        score-adjacent pairing inside small locality pools closes
        triangles on its own (see METHODOLOGY.md)."""
        base = WorldConfig(n_users=3_000, seed=2)
        config = dataclasses.replace(
            base,
            social=dataclasses.replace(base.social, triadic_closure=0.0),
        )
        world = SteamWorld.generate(config)
        from repro.core.graphstats import clustering_coefficient

        clustering = clustering_coefficient(world.dataset, sample_size=1_000)
        mean_degree = (
            2 * world.dataset.friends.n_edges / world.dataset.n_users
        )
        random_level = mean_degree / world.dataset.n_users
        assert clustering > 10 * random_level

    def test_no_collectors(self):
        base = WorldConfig(n_users=5_000, seed=2)
        config = dataclasses.replace(
            base,
            ownership=dataclasses.replace(
                base.ownership, collector_share=0.0
            ),
        )
        world = SteamWorld.generate(config)
        assert not world.ownership.is_collector.any()

    def test_no_idlers(self):
        base = WorldConfig(n_users=5_000, seed=2)
        config = dataclasses.replace(
            base,
            playtime=dataclasses.replace(base.playtime, idler_share=0.0),
        )
        world = SteamWorld.generate(config)
        assert not world.playtimes.idler_mask.any()

    def test_scale_factor(self):
        config = WorldConfig(n_users=108_700, seed=1)
        assert config.scale_factor == pytest.approx(1e-3)


class TestServiceEdgeCases:
    def test_empty_summary_batch(self, small_world):
        from repro.steamapi.service import DEFAULT_API_KEY, SteamApiService

        service = SteamApiService.from_world(small_world)
        response = service.get_player_summaries(DEFAULT_API_KEY, [])
        assert response["response"]["players"] == []

    def test_user_with_no_games(self, small_world):
        from repro.steamapi.service import DEFAULT_API_KEY, SteamApiService

        service = SteamApiService.from_world(small_world)
        ds = small_world.dataset
        lonely = int(np.flatnonzero(ds.owned_counts() == 0)[0])
        sid = int(ds.accounts.steamids()[lonely])
        response = service.get_owned_games(DEFAULT_API_KEY, sid)
        assert response["response"]["game_count"] == 0

    def test_dispatch_steamids_as_list(self, small_world):
        from repro.steamapi.service import DEFAULT_API_KEY, SteamApiService

        service = SteamApiService.from_world(small_world)
        sid = int(small_world.dataset.accounts.steamids()[0])
        response = service.dispatch(
            "/ISteamUser/GetPlayerSummaries/v2",
            {"key": DEFAULT_API_KEY, "steamids": [sid]},
        )
        assert len(response["response"]["players"]) == 1

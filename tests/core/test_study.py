"""End-to-end study orchestration and report rendering."""

import pytest

from repro import SteamStudy


@pytest.fixture(scope="module")
def report(small_world):
    study = SteamStudy(world=small_world, _dataset=small_world.dataset)
    return study.run(table4_max_tail=8_000)


class TestStudy:
    def test_generate_shortcut(self):
        study = SteamStudy.generate(n_users=2_000, seed=8)
        assert study.dataset.n_users == 2_000

    def test_from_dataset_has_no_world(self, small_dataset):
        study = SteamStudy.from_dataset(small_dataset)
        assert study.world is None
        report = study.run(include_table4=False, include_week_panel=True)
        # No world => no panel even when requested.
        assert report.fig12_week_panel is None

    def test_crawl_requires_world(self, small_dataset):
        study = SteamStudy.from_dataset(small_dataset)
        with pytest.raises(ValueError):
            study.crawl()


class TestReport:
    def test_all_sections_populated(self, report):
        assert report.table1 is not None
        assert report.table2 is not None
        assert report.table3 is not None
        assert report.table4 is not None
        assert report.fig12_week_panel is not None
        assert report.sec8_evolution is not None
        assert report.sec9_achievements is not None

    def test_render_mentions_every_artifact(self, report):
        text = report.render()
        for marker in (
            "Table 1",
            "Table 2",
            "Table 3",
            "Table 4",
            "Figure 1",
            "Figure 2",
            "Figure 3",
            "Figure 4",
            "Figure 5",
            "Figure 6",
            "Figure 7",
            "Figure 8",
            "Figure 9",
            "Figure 10",
            "Figure 11",
            "Figure 12",
            "Section 7",
            "Section 8",
            "Section 9",
        ):
            assert marker in text, marker

    def test_render_is_sane_size(self, report):
        text = report.render()
        assert 2_000 < len(text) < 100_000

    def test_optional_sections_can_be_skipped(self, small_world):
        study = SteamStudy(world=small_world, _dataset=small_world.dataset)
        report = study.run(include_table4=False, include_week_panel=False)
        assert report.table4 is None
        assert report.fig12_week_panel is None
        assert "Table 4" not in report.render()

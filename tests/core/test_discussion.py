"""Section 10 discussion statistics."""

import pytest

from repro.core.discussion import discussion_stats


@pytest.fixture(scope="module")
def stats(dataset):
    return discussion_stats(dataset)


class TestDiscussionStats:
    def test_stereotype_percentiles(self, stats):
        # Paper: 90th pct of two-week playtime ~ 8.7 h => ~0.62 h/day.
        assert stats.p90_twoweek_hours_per_day == pytest.approx(
            8.7 / 14, rel=0.25
        )
        # 95th pct ~ 25.5 h over two weeks => under 2 h/day.
        assert stats.p95_twoweek_hours_per_day < 2.0

    def test_addiction_cutoffs(self, stats):
        # Paper: "the top 1% play more than 5 hours a day".
        assert stats.top1_twoweek_hours_per_day == pytest.approx(5.0, rel=0.4)
        # "... have hundreds of games"
        assert stats.top1_owned_games > 70
        # "... or have spent thousands of dollars"
        assert stats.top1_market_value > 1_000

    def test_cohort_scales_to_around_a_million(self, stats):
        # Paper: "this 1% represents over a million gamers"; the union of
        # the three top-1% criteria lands in that ballpark at full scale.
        assert stats.top1_cohort_at_paper_scale > 700_000

    def test_network_of_friends(self, stats):
        # Caps bound the maximum degree: no celebrity accounts.
        assert stats.max_friends < 1_000
        assert stats.share_reciprocal == 1.0

    def test_render(self, stats):
        text = stats.render()
        assert "Stereotypes" in text
        assert "Addiction" in text
        assert "Network of friends" in text

    def test_requires_owners(self, small_dataset):
        import dataclasses

        import numpy as np

        from repro.store.tables import CSRMatrix, LibraryTable

        empty_lib = LibraryTable(
            owned=CSRMatrix(
                indptr=np.zeros(small_dataset.n_users + 1, dtype=np.int64),
                indices=np.empty(0, dtype=np.int32),
            ),
            total_min=np.empty(0, dtype=np.int64),
            twoweek_min=np.empty(0, dtype=np.int32),
        )
        stripped = dataclasses.replace(small_dataset, library=empty_lib)
        with pytest.raises(ValueError):
            discussion_stats(stripped)

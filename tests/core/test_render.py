"""ASCII figure rendering."""

import numpy as np
import pytest

from repro.core.binning import Series
from repro.core.render import ascii_bars, ascii_cdf, ascii_panel, ascii_plot


class TestAsciiPlot:
    def _series(self, label="s"):
        x = np.geomspace(1, 1000, 40)
        return Series(label, x, 1.0 / x)

    def test_dimensions(self):
        text = ascii_plot([self._series()], width=60, height=10)
        lines = text.splitlines()
        plot_rows = [line for line in lines if line.startswith("|")]
        assert len(plot_rows) == 10
        assert all(len(row) == 61 for row in plot_rows)

    def test_title_and_legend(self):
        text = ascii_plot([self._series("pdf")], title="My Figure")
        assert text.splitlines()[0] == "My Figure"
        assert "o=pdf" in text

    def test_multiple_series_glyphs(self):
        text = ascii_plot([self._series("a"), self._series("b")])
        assert "o=a" in text and "x=b" in text

    def test_power_law_renders_as_diagonal(self):
        """A log-log power law occupies a monotone descending band."""
        text = ascii_plot([self._series()], width=40, height=12)
        rows = [line[1:] for line in text.splitlines() if line.startswith("|")]
        first_marks = [row.find("o") for row in rows if "o" in row]
        assert first_marks == sorted(first_marks)

    def test_no_positive_data(self):
        series = Series("z", np.array([0.0]), np.array([0.0]))
        assert "no positive data" in ascii_plot([series])

    def test_linear_axes(self):
        series = Series("lin", np.arange(10.0), np.arange(10.0))
        text = ascii_plot([series], logx=False, logy=False)
        assert "(log)" not in text


class TestAsciiCdfBarsPanel:
    def test_cdf(self):
        series = Series("cdf", np.geomspace(1, 100, 20), np.linspace(0.1, 1, 20))
        text = ascii_cdf([series], title="A CDF")
        assert "A CDF" in text

    def test_bars_with_overlay(self):
        text = ascii_bars(
            ["Action", "Strategy"], [100.0, 40.0], overlay=[40.0, 10.0]
        )
        lines = text.splitlines()
        assert lines[0].startswith("Action")
        assert "|" in lines[0]
        assert lines[0].count("#") > lines[1].count("#")

    def test_bars_empty(self):
        assert ascii_bars([], [], title="t") == "t"

    def test_panel_shape(self):
        matrix = np.random.default_rng(0).random((500, 7)) * 24
        text = ascii_panel(matrix, width=50, title="panel")
        lines = text.splitlines()
        day_rows = [line for line in lines if line.startswith("day")]
        assert len(day_rows) == 7

    def test_panel_intensity_monotone(self):
        """Heavier columns render darker glyphs."""
        ramp = " .:-=+*#%@"
        matrix = np.zeros((100, 1))
        matrix[50:, 0] = 24.0
        text = ascii_panel(matrix, width=10)
        row = text.splitlines()[0]
        cells = row.split("|")[1]
        assert ramp.index(cells[-1]) > ramp.index(cells[0])


class TestReportFigures:
    def test_render_figures_mentions_each(self, small_world):
        from repro import SteamStudy

        study = SteamStudy(world=small_world, _dataset=small_world.dataset)
        report = study.run(include_table4=False)
        text = report.render_figures()
        for marker in (
            "Figure 4",
            "Figure 5",
            "Figure 6",
            "Figure 7",
            "Figure 8",
            "Figure 11",
            "Figure 12",
        ):
            assert marker in text, marker

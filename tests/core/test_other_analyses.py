"""Figure 10/12, Section 8/9 analyses, Table 4 pipeline."""

import numpy as np
import pytest

from repro.core.achievements import achievement_report
from repro.core.distributions import classify_distributions
from repro.core.evolution import snapshot_comparison
from repro.core.multiplayer import multiplayer_share
from repro.core.weekpanel import analyze_week_panel


class TestMultiplayerShare:
    @pytest.fixture(scope="class")
    def result(self, dataset):
        return multiplayer_share(dataset)

    def test_shares_in_range(self, result):
        assert 0.4 < result.catalog_share < 0.6
        assert 0.4 < result.total_playtime_share < 0.8
        assert 0.45 < result.twoweek_playtime_share < 0.85

    def test_playtime_overrepresents_multiplayer(self, result):
        # Figure 10's core claim.
        assert result.total_playtime_share > result.catalog_share

    def test_all_multiplayer_user_shares(self, result):
        assert 0.0 < result.users_all_multiplayer_total <= 1.0
        assert 0.0 < result.users_all_multiplayer_twoweek <= 1.0
        # Two-week windows touch fewer games, so more users are
        # all-multiplayer within them.
        assert (
            result.users_all_multiplayer_twoweek
            >= result.users_all_multiplayer_total
        )


class TestSnapshotComparison:
    @pytest.fixture(scope="class")
    def result(self, dataset):
        return snapshot_comparison(dataset)

    def test_three_rows(self, result):
        assert {row.attribute for row in result.rows} == {
            "owned_games",
            "market_value",
            "total_playtime",
        }

    def test_growth_ratios(self, result):
        owned = result.row("owned_games")
        assert owned.p80_growth == pytest.approx(1.5, abs=0.35)
        assert owned.tail_outpaces_p80()

    def test_requires_snapshot2(self, dataset):
        import dataclasses

        stripped = dataclasses.replace(dataset, snapshot2=None)
        with pytest.raises(ValueError):
            snapshot_comparison(stripped)

    def test_render(self, result):
        assert "paper" in result.render()


class TestWeekPanelAnalysis:
    @pytest.fixture(scope="class")
    def stats(self, world):
        return analyze_week_panel(world.week_panel())

    def test_sorted_by_day1(self, stats):
        day1 = stats.sorted_hours[:, 0]
        assert np.all(np.diff(day1) >= 0)

    def test_day1_correlations_positive(self, stats):
        # Heavy day-1 players remain heavier later (Figure 12).
        assert all(c > 0.05 for c in stats.day1_correlations)

    def test_many_day1_idlers_play_later(self, stats):
        # The paper's headline: playtime is not a fixed "heavy hitter" set.
        assert stats.day1_idle_share > 0.2

    def test_ordering_persists(self, stats):
        assert stats.ordering_persists()

    def test_active_subset_of_sample(self, stats):
        assert stats.n_active <= stats.n_sampled


class TestAchievementReport:
    @pytest.fixture(scope="class")
    def report(self, dataset):
        return achievement_report(dataset)

    def test_count_statistics(self, report):
        assert report.count_median == pytest.approx(24, abs=5)
        assert report.count_mean == pytest.approx(33.1, rel=0.35)
        assert report.count_max <= 1629

    def test_correlation_band_structure(self, report):
        # Paper: moderate inside 1-90, none beyond 90.
        assert report.corr_1_90 == pytest.approx(0.53, abs=0.2)
        assert abs(report.corr_gt90) < 0.25
        assert report.corr_1_90 > report.corr_gt90

    def test_completion_skew(self, report):
        # Mean above median above mode (right-skewed).
        assert report.completion_mean_single > report.completion_median_single
        assert report.completion_median_single == pytest.approx(
            0.11, abs=0.04
        )

    def test_adventure_tops_strategy(self, report):
        assert (
            report.genre_completion["Adventure"]
            > report.genre_completion["Strategy"]
        )
        assert report.genre_completion["Adventure"] == pytest.approx(
            0.19, abs=0.04
        )

    def test_requires_achievements(self, dataset):
        import dataclasses

        stripped = dataclasses.replace(dataset, achievements=None)
        with pytest.raises(ValueError):
            achievement_report(stripped)

    def test_render(self, report):
        assert "achievements per game" in report.render()


class TestTable4Pipeline:
    @pytest.fixture(scope="class")
    def table(self, dataset):
        return classify_distributions(
            dataset,
            include_yearly_friendships=False,
            max_tail=15_000,
        )

    def test_core_rows_present(self, table):
        labels = table.labels()
        for name in (
            "account market values",
            "total playtime",
            "two-week playtime",
            "game ownership",
            "group size",
        ):
            assert name in labels

    def test_everything_is_heavy_tailed_family(self, table):
        """The paper's headline: every distribution is heavy-tailed, and
        none is a pure power law."""
        allowed = {
            "heavy-tailed",
            "long-tailed",
            "lognormal",
            "truncated power law",
        }
        labels = table.labels()
        # Two-week playtime is excluded here: at this scale only a few
        # thousand users have nonzero values and the PL-vs-exponential
        # gate becomes flaky (the benchmark checks it at full scale).
        core = [
            "account market values",
            "game ownership",
            "group size",
        ]
        for name in core:
            assert labels[name] in allowed, (name, labels[name])
        assert "power law" not in set(labels.values())

    def test_snapshot2_rows_present(self, table):
        assert "game ownership (second snapshot)" in table.labels()

    def test_classifications_stable_across_snapshots(self, table):
        """Section 8: ownership keeps its classification a year later."""
        labels = table.labels()
        family = {
            "long-tailed",
            "lognormal",
            "truncated power law",
            "heavy-tailed",
        }
        assert labels["game ownership"] in family
        assert labels["game ownership (second snapshot)"] in family

    def test_render_has_all_columns(self, table):
        text = table.render()
        assert "PLvExp R" in text
        assert "classification" in text

"""Figures 6-9 analyses."""

import numpy as np
import pytest

from repro.core.expenditure import (
    genre_expenditure,
    market_value_distribution,
    playtime_cdf,
    twoweek_nonzero,
)


class TestPlaytimeCdf:
    @pytest.fixture(scope="class")
    def result(self, dataset):
        return playtime_cdf(dataset)

    def test_top_shares_near_paper(self, result):
        assert result.top20_total_share == pytest.approx(0.824, abs=0.08)
        assert result.top10_twoweek_share == pytest.approx(0.93, abs=0.06)

    def test_zero_twoweek_share(self, result):
        assert result.zero_twoweek_share == pytest.approx(0.82, abs=0.03)

    def test_cdf_series_valid(self, result):
        for series in (result.total_cdf, result.twoweek_cdf):
            assert series.y[-1] == pytest.approx(1.0)
            assert np.all(np.diff(series.y) >= 0)

    def test_twoweek_cdf_starts_high(self, result):
        # >80% of owners have zero two-week playtime: CDF(0) > 0.8.
        assert result.twoweek_cdf.y[0] > 0.75


class TestTwoWeekNonzero:
    @pytest.fixture(scope="class")
    def result(self, dataset):
        return twoweek_nonzero(dataset)

    def test_p80_near_paper(self, result):
        assert result.p80_hours == pytest.approx(32.05, rel=0.15)

    def test_capped_at_336(self, result):
        assert result.max_hours <= 336.0

    def test_near_cap_share_tiny(self, result):
        assert result.near_cap_share < 0.002

    def test_render(self, result):
        assert "80th pct" in result.render()


class TestMarketValue:
    @pytest.fixture(scope="class")
    def result(self, dataset):
        return market_value_distribution(dataset)

    def test_p80_near_paper(self, result):
        assert result.p80_dollars == pytest.approx(150.88, rel=0.35)

    def test_top20_share(self, result):
        assert result.top20_share == pytest.approx(0.73, abs=0.12)

    def test_max_far_above_p80(self, result):
        # Paper: the max is over 160x the 80th percentile.
        assert result.max_dollars > 10 * result.p80_dollars


class TestGenreExpenditure:
    @pytest.fixture(scope="class")
    def result(self, dataset):
        return genre_expenditure(dataset)

    def test_action_dominates_playtime(self, result):
        shares = {
            genre: result.playtime_share(genre) for genre in result.genres
        }
        assert max(shares, key=shares.get) == "Action"

    def test_action_shares_near_paper(self, result):
        assert result.playtime_share("Action") == pytest.approx(
            0.4924, abs=0.13
        )
        assert result.value_share("Action") == pytest.approx(0.5188, abs=0.12)

    def test_overlap_exceeds_totals(self, result):
        # Genre labels overlap, so the per-genre sum exceeds the total.
        assert result.playtime_hours.sum() > result.total_playtime_hours

    def test_render(self, result):
        assert "Action" in result.render()

"""Friendship-graph structure (the Becker corroboration)."""

import numpy as np
import pytest

from repro.core.graphstats import (
    average_path_length,
    clustering_coefficient,
    connected_components,
    degree_assortativity,
    graph_structure,
)
from repro.store.tables import FriendTable


def _graph(edges, n):
    u = np.array([e[0] for e in edges], dtype=np.int32)
    v = np.array([e[1] for e in edges], dtype=np.int32)
    return FriendTable(u=u, v=v, day=np.zeros(len(edges), dtype=np.int32), n_users=n)


class TestConnectedComponents:
    def test_two_components(self):
        friends = _graph([(0, 1), (1, 2), (3, 4)], 6)
        labels = connected_components(friends)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]
        assert labels[5] not in (labels[0], labels[3])

    def test_chain(self):
        friends = _graph([(i, i + 1) for i in range(9)], 10)
        labels = connected_components(friends)
        assert len(np.unique(labels)) == 1

    def test_empty_graph(self):
        friends = _graph([], 5)
        labels = connected_components(friends)
        assert len(np.unique(labels)) == 5


class TestClustering:
    def _dataset(self, edges, n):
        import dataclasses

        from repro import SteamWorld, WorldConfig

        # Borrow a tiny world's tables and swap in a synthetic graph.
        world = SteamWorld.generate(WorldConfig(n_users=max(n, 1000), seed=9))
        return dataclasses.replace(
            world.dataset, friends=_graph(edges, world.dataset.n_users)
        )

    def test_triangle_is_fully_clustered(self):
        ds = self._dataset([(0, 1), (1, 2), (0, 2)], 3)
        assert clustering_coefficient(ds, sample_size=500) == pytest.approx(
            1.0
        )

    def test_star_has_zero_clustering(self):
        ds = self._dataset([(0, i) for i in range(1, 20)], 20)
        assert clustering_coefficient(ds, sample_size=500) == 0.0

    def test_generated_graph_is_clustered(self, dataset):
        clustering = clustering_coefficient(dataset, sample_size=4_000)
        mean_degree = 2 * dataset.friends.n_edges / dataset.n_users
        random_level = mean_degree / dataset.n_users
        assert clustering > 20 * random_level


class TestAssortativityAndPaths:
    def test_assortativity_of_generated_graph_positive(self, dataset):
        # "As users have more friends, they tend to connect to those with
        # more friends" (Section 10.3).
        assert degree_assortativity(dataset) > 0.1

    def test_path_length_short(self, dataset):
        apl = average_path_length(dataset, n_sources=10)
        assert 1.0 < apl < 12.0


class TestGraphStructure:
    @pytest.fixture(scope="class")
    def structure(self, dataset):
        return graph_structure(
            dataset, clustering_samples=4_000, path_sources=10
        )

    def test_small_world(self, structure):
        assert structure.is_small_world()

    def test_giant_component_dominates(self, structure):
        assert structure.giant_component_share > 0.8

    def test_isolated_share_matches_friended_fraction(self, structure, dataset):
        friended = np.mean(dataset.friend_counts() > 0)
        assert structure.isolated_share == pytest.approx(
            1.0 - friended, abs=1e-9
        )

    def test_render(self, structure):
        text = structure.render()
        assert "clustering" in text
        assert "small world" in text

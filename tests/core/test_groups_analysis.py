"""Table 2 and Figure 3 analyses."""

import numpy as np
import pytest

from repro.core.groups import (
    distinct_games_played,
    group_distributions,
    group_type_table,
)


class TestGroupTypeTable:
    def test_counts_sum_to_top_n(self, dataset):
        table = group_type_table(dataset)
        assert sum(table.counts.values()) == table.top_n == 250

    def test_game_server_dominates(self, dataset):
        table = group_type_table(dataset)
        assert max(table.counts, key=table.counts.get) == "Game Server"

    def test_shares_near_table2(self, dataset):
        shares = group_type_table(dataset).shares()
        assert shares["Game Server"] == pytest.approx(0.456, abs=0.1)
        assert shares["Single Game"] == pytest.approx(0.204, abs=0.08)

    def test_handles_fewer_groups_than_n(self, small_dataset):
        table = group_type_table(small_dataset, top_n=10**6)
        assert table.top_n == small_dataset.groups.n_groups

    def test_render(self, dataset):
        assert "Game Server" in group_type_table(dataset).render()


class TestDistinctGamesPlayed:
    @pytest.fixture(scope="class")
    def result(self, dataset):
        return distinct_games_played(dataset)

    def test_population_is_large_groups(self, result, dataset):
        sizes = dataset.groups.sizes()
        assert result.n_large_groups == int((sizes >= 100).sum())

    def test_distinct_counts_bounded(self, result, dataset):
        assert result.distinct_games.max() <= dataset.n_products
        assert result.distinct_games.min() >= 0

    def test_large_groups_play_many_games(self, result):
        # Figure 3: most big groups span hundreds of distinct games.
        assert np.median(result.distinct_games) > 50

    def test_dedicated_share_small(self, result):
        # Paper: 4.97% of large groups are single-game dedicated.
        assert result.single_game_dedicated_share < 0.30

    def test_histogram(self, result):
        series = result.histogram()
        assert series.y.sum() > 0

    def test_smaller_threshold_more_groups(self, dataset):
        loose = distinct_games_played(dataset, min_size=20)
        strict = distinct_games_played(dataset, min_size=100)
        assert loose.n_large_groups >= strict.n_large_groups


class TestGroupDistributions:
    def test_counts(self, dataset):
        result = group_distributions(dataset)
        assert result.n_groups == dataset.groups.n_groups
        assert result.n_memberships == dataset.groups.members.nnz

    def test_heavy_tailed_sizes(self, dataset):
        result = group_distributions(dataset)
        # Density spans several orders of magnitude.
        assert result.size_pdf.y.max() / result.size_pdf.y.min() > 100

"""Section 7 correlations and Figure 11."""

import numpy as np
import pytest

from repro.core.homophily import cross_correlations, homophily, neighbor_mean


class TestNeighborMean:
    def test_small_graph_by_hand(self, small_dataset):
        values = np.arange(small_dataset.n_users, dtype=float)
        avg = neighbor_mean(small_dataset, values)
        friends = small_dataset.friends
        u0 = int(friends.u[0])
        neighbors = np.concatenate(
            [
                friends.v[friends.u == u0],
                friends.u[friends.v == u0],
            ]
        )
        assert avg[u0] == pytest.approx(values[neighbors].mean())

    def test_nan_for_isolated_users(self, small_dataset):
        values = np.ones(small_dataset.n_users)
        avg = neighbor_mean(small_dataset, values)
        isolated = small_dataset.friend_counts() == 0
        assert np.all(np.isnan(avg[isolated]))
        assert np.all(np.isfinite(avg[~isolated]))


class TestHomophily:
    @pytest.fixture(scope="class")
    def result(self, dataset):
        return homophily(dataset)

    def test_four_correlations(self, result):
        assert len(result.correlations.rhos) == 4

    def test_all_positive(self, result):
        for name, rho in result.correlations.rhos.items():
            assert rho > 0.25, name

    def test_value_homophily_strongest(self, result):
        rhos = result.correlations.rhos
        assert rhos["market_value vs friends' avg"] == max(rhos.values())

    def test_scatter_sample(self, result):
        assert len(result.scatter_x) == len(result.scatter_y)
        assert len(result.scatter_x) > 100

    def test_scatter_is_deterministic(self, dataset):
        a = homophily(dataset, seed=3)
        b = homophily(dataset, seed=3)
        assert np.array_equal(a.scatter_x, b.scatter_x)

    def test_render_contains_strengths(self, result):
        text = result.render()
        assert "market_value" in text
        assert "paper" in text.lower() or "+0." in text


class TestCrossCorrelations:
    @pytest.fixture(scope="class")
    def result(self, dataset):
        return cross_correlations(dataset)

    def test_five_pairs(self, result):
        assert len(result.rhos) == 5

    def test_ordering_matches_paper(self, result):
        rhos = result.rhos
        # owned-friends is the strongest, friends-twoweek the weakest.
        assert rhos["owned_games vs friends"] == max(rhos.values())
        assert rhos["friends vs twoweek_playtime"] == min(rhos.values())

    def test_within_bands(self, result):
        for name, rho in result.rhos.items():
            assert rho == pytest.approx(result.paper[name], abs=0.12), name

    def test_populations_recorded(self, result, dataset):
        for name, population in result.populations.items():
            assert 0 < population <= dataset.n_users

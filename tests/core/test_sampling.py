"""Crawl-sampling bias (Section 2.2's census-vs-crawl argument)."""

import numpy as np
import pytest

from repro.core.sampling import (
    random_walk_sample,
    sampling_bias,
    snowball_sample,
)


class TestSnowballSample:
    def test_size_and_uniqueness(self, dataset):
        sample = snowball_sample(dataset, 2_000, rng=np.random.default_rng(1))
        assert len(sample) == 2_000
        assert len(np.unique(sample)) == 2_000

    def test_only_connected_users(self, dataset):
        sample = snowball_sample(dataset, 2_000, rng=np.random.default_rng(1))
        assert np.all(dataset.friend_counts()[sample] > 0)

    def test_deterministic(self, dataset):
        a = snowball_sample(dataset, 500, rng=np.random.default_rng(3))
        b = snowball_sample(dataset, 500, rng=np.random.default_rng(3))
        assert np.array_equal(a, b)


class TestRandomWalkSample:
    def test_degree_biased(self, dataset):
        sample = random_walk_sample(
            dataset, 3_000, rng=np.random.default_rng(2)
        )
        degrees = dataset.friend_counts()
        connected_mean = degrees[degrees > 0].mean()
        assert degrees[sample].mean() > 1.2 * connected_mean

    def test_distinct_users(self, dataset):
        sample = random_walk_sample(
            dataset, 1_000, rng=np.random.default_rng(2)
        )
        assert len(np.unique(sample)) == len(sample)


class TestSamplingBias:
    @pytest.mark.parametrize("method", ["snowball", "random_walk"])
    def test_crawls_inflate_degree(self, dataset, method):
        bias = sampling_bias(dataset, method=method, sample_fraction=0.05)
        # The paper's Section 2.2 point: crawl samples overstate
        # connectivity because low-degree users are harder to reach.
        assert bias.degree_inflation > 1.05

    def test_unreachable_share_is_isolated_share(self, dataset):
        bias = sampling_bias(dataset, sample_fraction=0.02)
        assert bias.unreachable_share == pytest.approx(
            float(np.mean(dataset.friend_counts() == 0)), abs=1e-9
        )

    def test_most_accounts_invisible_to_crawls(self, dataset):
        """~70% of accounts have no friends: a crawl can never see them;
        only the exhaustive ID sweep (the paper's approach) can."""
        bias = sampling_bias(dataset, sample_fraction=0.02)
        assert bias.unreachable_share > 0.5

    def test_unknown_method_rejected(self, dataset):
        with pytest.raises(ValueError):
            sampling_bias(dataset, method="teleport")

    def test_render(self, dataset):
        text = sampling_bias(dataset, sample_fraction=0.02).render()
        assert "inflated" in text

"""Figures 1-2, Table 1, locality (Section 4.1)."""

import numpy as np
import pytest

from repro.core.social import (
    country_table,
    degree_distributions,
    locality,
    network_evolution,
)


class TestCountryTable:
    def test_top10_structure(self, dataset):
        table = country_table(dataset)
        assert len(table.names) == 10
        assert len(table.shares) == 10
        assert sum(table.shares) + table.other_share == pytest.approx(1.0)

    def test_us_first(self, dataset):
        table = country_table(dataset)
        assert table.names[0] == "United States"
        assert table.shares[0] == pytest.approx(0.2021, abs=0.02)

    def test_report_rate(self, dataset):
        table = country_table(dataset)
        assert table.report_rate == pytest.approx(0.107, abs=0.01)

    def test_other_share_near_paper(self, dataset):
        table = country_table(dataset)
        assert table.other_share == pytest.approx(0.3544, abs=0.05)

    def test_render(self, dataset):
        text = country_table(dataset).render()
        assert "United States" in text
        assert "Other" in text


class TestNetworkEvolution:
    def test_series_monotone(self, dataset):
        evo = network_evolution(dataset)
        assert np.all(np.diff(evo.cumulative_users) >= 0)
        assert np.all(np.diff(evo.cumulative_friendships) >= 0)

    def test_starts_at_timestamp_epoch(self, dataset):
        evo = network_evolution(dataset)
        assert evo.days[0] == dataset.meta.friend_ts_epoch_day

    def test_friendships_grow_faster_than_users(self, dataset):
        evo = network_evolution(dataset)
        assert evo.friendships_grow_faster()

    def test_series_accessor(self, dataset):
        users, friends = network_evolution(dataset).series()
        assert users.label == "users"
        assert len(users) == len(friends)


class TestDegreeDistributions:
    @pytest.fixture(scope="class")
    def degrees(self, dataset):
        return degree_distributions(dataset)

    def test_overall_histogram_covers_all_users(self, degrees, dataset):
        positive = dataset.friend_counts()
        assert degrees.overall.y.sum() == (positive > 0).sum()

    def test_per_year_series_exist(self, degrees):
        assert len(degrees.per_year) >= 4
        for year, series in degrees.per_year.items():
            assert 2008 <= year <= 2013
            assert series.y.sum() > 0

    def test_most_users_add_few_friends(self, degrees):
        # Paper: 88.06% of active users add <= 10 friends per year.
        assert degrees.share_adding_le10 == pytest.approx(0.8806, abs=0.1)

    def test_very_few_add_many(self, degrees):
        assert degrees.share_adding_gt200 < 0.005

    def test_cap_dips(self, degrees):
        assert degrees.dip_at_cap(250)
        assert degrees.dip_at_cap(300)


class TestLocality:
    def test_shares_near_paper(self, dataset):
        result = locality(dataset)
        assert result.international_share == pytest.approx(0.3034, abs=0.095)
        assert result.cross_city_share == pytest.approx(0.7984, abs=0.08)

    def test_pair_counts_positive(self, dataset):
        result = locality(dataset)
        assert result.n_country_pairs > 0
        assert result.n_city_pairs > 0
        assert result.n_city_pairs < result.n_country_pairs

    def test_render(self, dataset):
        assert "international" in locality(dataset).render()

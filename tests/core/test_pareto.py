"""Concentration statistics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pareto import gini, lorenz_curve, top_share

positive_lists = st.lists(
    st.floats(min_value=0.01, max_value=1e6, allow_nan=False),
    min_size=2,
    max_size=300,
)


class TestTopShare:
    def test_uniform_values(self):
        values = np.ones(100)
        assert top_share(values, 0.2) == pytest.approx(0.2)

    def test_single_whale(self):
        values = np.zeros(100)
        values[0] = 100.0
        assert top_share(values, 0.01) == pytest.approx(1.0)

    def test_paper_like_heavy_tail(self, rng):
        values = (1 - rng.random(100_000)) ** (-1 / 0.9)
        assert top_share(values, 0.2) > 0.5

    @given(positive_lists)
    @settings(max_examples=60)
    def test_bounds(self, values):
        share = top_share(np.array(values), 0.3)
        assert 0.0 <= share <= 1.0 + 1e-12

    @given(positive_lists)
    @settings(max_examples=60)
    def test_monotone_in_fraction(self, values):
        arr = np.array(values)
        assert top_share(arr, 0.5) >= top_share(arr, 0.2) - 1e-12

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            top_share(np.ones(3), 0.0)
        with pytest.raises(ValueError):
            top_share(np.empty(0), 0.5)

    def test_all_zero_is_nan(self):
        assert np.isnan(top_share(np.zeros(5), 0.2))


class TestLorenzAndGini:
    def test_lorenz_endpoints(self, rng):
        curve = lorenz_curve(rng.random(1000) + 0.1)
        assert curve[0] == 0.0
        assert curve[-1] == pytest.approx(1.0)

    def test_lorenz_monotone_convex(self, rng):
        curve = lorenz_curve(rng.random(1000) + 0.1)
        assert np.all(np.diff(curve) >= -1e-12)

    def test_gini_uniform_is_zero(self):
        assert gini(np.ones(1000)) == pytest.approx(0.0, abs=1e-6)

    def test_gini_concentrated_near_one(self):
        values = np.zeros(1000)
        values[0] = 1.0
        assert gini(values) > 0.99

    @given(positive_lists)
    @settings(max_examples=60)
    def test_gini_bounds(self, values):
        g = gini(np.array(values))
        assert -1e-9 <= g < 1.0

"""Own Spearman implementation, cross-checked against scipy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats

from repro.core.spearman import rankdata_average, spearman, strength_label

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
)


class TestRankdata:
    def test_simple(self):
        assert rankdata_average(np.array([30, 10, 20])).tolist() == [3, 1, 2]

    def test_ties_get_average_rank(self):
        ranks = rankdata_average(np.array([5, 5, 1, 9]))
        assert ranks.tolist() == [2.5, 2.5, 1.0, 4.0]

    @given(st.lists(finite_floats, min_size=1, max_size=200))
    @settings(max_examples=80)
    def test_matches_scipy(self, values):
        ours = rankdata_average(np.array(values))
        theirs = stats.rankdata(values, method="average")
        assert np.allclose(ours, theirs)

    def test_nan_input_raises(self):
        # Regression: argsort places NaN last, so a NaN used to get a
        # quiet ordinary rank and corrupt every rho downstream.
        with pytest.raises(ValueError, match="NaN"):
            rankdata_average(np.array([1.0, np.nan, 3.0]))

    def test_integer_input_skips_nan_scan(self):
        # Integer dtypes cannot hold NaN; the guard must not choke.
        assert rankdata_average(np.array([3, 1, 2])).tolist() == [3, 1, 2]


class TestSpearman:
    def test_perfect_monotone(self, rng):
        x = rng.random(100)
        assert spearman(x, np.exp(x)) == pytest.approx(1.0)
        assert spearman(x, -x) == pytest.approx(-1.0)

    def test_independent_near_zero(self, rng):
        assert abs(spearman(rng.random(20_000), rng.random(20_000))) < 0.03

    @given(
        st.lists(
            st.tuples(finite_floats, finite_floats), min_size=5, max_size=100
        )
    )
    @settings(max_examples=60)
    def test_matches_scipy(self, pairs):
        a = np.array([p[0] for p in pairs])
        b = np.array([p[1] for p in pairs])
        ours = spearman(a, b)
        if np.all(a == a[0]) or np.all(b == b[0]):
            # Constant input: rho is undefined.  Assert our documented
            # NaN behavior directly instead of routing through scipy,
            # whose ConstantInputWarning would pollute the suite.
            assert np.isnan(ours)
            return
        theirs = stats.spearmanr(a, b).statistic
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_constant_input_is_nan(self):
        assert np.isnan(spearman(np.ones(10), np.arange(10.0)))

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError):
            spearman(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            spearman(np.ones(1), np.ones(1))

    def test_nan_sample_raises_with_side_identified(self):
        clean = np.arange(5.0)
        dirty = np.array([0.0, 1.0, np.nan, 3.0, 4.0])
        with pytest.raises(ValueError, match="sample a"):
            spearman(dirty, clean)
        with pytest.raises(ValueError, match="sample b"):
            spearman(clean, dirty)


class TestStrengthLabel:
    @pytest.mark.parametrize(
        "rho,label",
        [
            (0.1, "very weak"),
            (-0.25, "weak"),
            (0.45, "moderate"),
            (0.77, "strong"),
            (-0.9, "very strong"),
        ],
    )
    def test_paper_scale(self, rho, label):
        assert strength_label(rho) == label

"""Table 3 reproduction machinery."""

import numpy as np
import pytest

from repro import constants
from repro.core.percentiles import percentile_table


@pytest.fixture(scope="module")
def table(dataset):
    return percentile_table(dataset)


class TestStructure:
    def test_all_six_rows(self, table):
        names = {row.attribute for row in table.rows}
        assert names == {
            "friends",
            "owned_games",
            "group_memberships",
            "market_value",
            "total_playtime_hours",
            "twoweek_playtime_hours",
        }

    def test_rows_carry_paper_reference(self, table):
        for row in table.rows:
            assert row.paper is not None
            assert len(row.paper) == 5

    def test_row_lookup(self, table):
        assert table.row("friends").attribute == "friends"
        with pytest.raises(KeyError):
            table.row("nonsense")

    def test_values_monotone_across_percentiles(self, table):
        for row in table.rows:
            values = np.array(row.values)
            assert np.all(np.diff(values) >= 0)

    def test_as_dict(self, table):
        d = table.row("friends").as_dict()
        assert set(d) == {"p50", "p80", "p90", "p95", "p99"}

    def test_render_mentions_paper(self, table):
        text = table.render()
        assert "(paper)" in text
        assert "friends" in text

    def test_render_aligns_long_attribute_names(self):
        # Regression: a fixed 24-char label column overflowed for
        # attribute names of 24+ chars, shifting that row's cells.
        from repro.core.percentiles import PercentileRow, PercentileTable

        long_name = "a_very_long_attribute_name_indeed"
        assert len(long_name) >= 24
        table = PercentileTable(
            rows=(
                PercentileRow("friends", (1.0,) * 5, 10),
                PercentileRow(long_name, (2.0,) * 5, 10),
            )
        )
        lines = table.render().split("\n")
        header, rows = lines[0], lines[2:]
        # Every row is exactly header-width: labels stay inside the
        # label column, so value cells line up under p50..p99.
        assert all(len(line) == len(header) for line in rows)
        label_width = len(long_name) + 2
        for line in rows:
            assert line[:label_width].rstrip() in ("friends", long_name)


class TestPopulations:
    def test_population_counts(self, table, dataset):
        owners = int((dataset.owned_counts() > 0).sum())
        assert table.row("owned_games").population == owners
        assert table.row("twoweek_playtime_hours").population == owners

    def test_twoweek_row_shows_zeros(self, table):
        row = table.row("twoweek_playtime_hours")
        assert row.values[0] == 0.0
        assert row.values[1] == 0.0
        assert row.values[2] > 0.0


class TestAgainstPaper:
    @pytest.mark.parametrize("attribute", list(constants.TABLE3))
    def test_every_anchor_within_band(self, table, attribute):
        row = table.row(
            attribute
            if attribute in ("friends", "owned_games", "group_memberships",
                             "market_value")
            else attribute
        )
        for got, paper in zip(row.values, row.paper):
            if paper == 0.0:
                assert got == 0.0
            else:
                assert got == pytest.approx(paper, rel=0.45, abs=1.2), (
                    attribute,
                    got,
                    paper,
                )


class TestPercentileValueValidation:
    """Regression: degenerate inputs must raise a named ValueError, not
    an IndexError/ZeroDivisionError from inside numpy."""

    def test_empty_population_raises_named_error(self):
        from repro.core.percentiles import percentile_value

        with pytest.raises(ValueError, match="empty population"):
            percentile_value(np.empty(0), 50.0)

    @pytest.mark.parametrize("q", [-0.001, -5, 100.001, 250])
    def test_out_of_range_q(self, q):
        from repro.core.percentiles import percentile_value

        with pytest.raises(ValueError, match=r"in \[0, 100\]"):
            percentile_value(np.array([1.0, 2.0]), q)

    def test_nan_q(self):
        from repro.core.percentiles import percentile_value

        with pytest.raises(ValueError, match="not NaN"):
            percentile_value(np.array([1.0, 2.0]), float("nan"))

    def test_single_element_population(self):
        from repro.core.percentiles import percentile_value

        for q in (0.0, 50.0, 100.0):
            assert percentile_value(np.array([7.0]), q) == 7.0

    def test_boundary_q_accepted(self):
        from repro.core.percentiles import percentile_value

        values = np.array([1.0, 2.0, 3.0])
        assert percentile_value(values, 0) == 1.0
        assert percentile_value(values, 100) == 3.0


class TestPercentileRankValidation:
    def test_empty_population_raises_named_error(self):
        from repro.core.percentiles import percentile_rank

        with pytest.raises(ValueError, match="empty population"):
            percentile_rank(np.empty(0), 1.0)

    def test_nan_probe(self):
        from repro.core.percentiles import percentile_rank

        with pytest.raises(ValueError, match="not NaN"):
            percentile_rank(np.array([1.0, 2.0]), float("nan"))

    def test_rank_of_single_element(self):
        from repro.core.percentiles import percentile_rank

        assert percentile_rank(np.array([5.0]), 5.0) == 100.0
        assert percentile_rank(np.array([5.0]), 4.0) == 0.0

    def test_rank_is_inverse_of_value(self):
        from repro.core.percentiles import percentile_rank

        values = np.sort(np.random.default_rng(7).integers(1, 100, 500))
        assert percentile_rank(values, float(values[-1])) == 100.0
        assert percentile_rank(values, 0.0) == 0.0
        mid = float(values[249])
        rank = percentile_rank(values, mid)
        assert 40.0 <= rank <= 60.0

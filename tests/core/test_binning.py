"""Series builders for the figures."""

import numpy as np
import pytest

from repro.core.binning import (
    Series,
    ccdf,
    cdf_series,
    count_histogram,
    log_binned_pdf,
)


class TestSeries:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            Series("x", np.arange(3), np.arange(4))

    def test_len(self):
        assert len(Series("x", np.arange(3), np.arange(3))) == 3


class TestLogBinnedPdf:
    def test_density_integrates_to_one(self, rng):
        values = np.exp(rng.normal(2, 1, 50_000))
        series = log_binned_pdf(values, n_bins=60)
        # Riemann sum over the log bins (approximate).
        edges = np.geomspace(values.min(), values.max() * (1 + 1e-9), 61)
        widths = np.diff(edges)
        counts, _ = np.histogram(values, bins=edges)
        mass = (counts / widths / len(values) * widths).sum()
        assert mass == pytest.approx(1.0, abs=1e-6)
        assert series.y.min() > 0

    def test_drops_empty_bins(self, rng):
        values = np.concatenate([np.full(100, 1.0), np.full(100, 1e6)])
        series = log_binned_pdf(values, n_bins=30)
        assert len(series) == 2

    def test_constant_data(self):
        series = log_binned_pdf(np.full(10, 5.0))
        assert series.x.tolist() == [5.0]

    def test_rejects_nonpositive_only(self):
        with pytest.raises(ValueError):
            log_binned_pdf(np.zeros(10))


class TestCountHistogram:
    def test_exact_counts(self):
        series = count_histogram(np.array([1, 1, 2, 5, 5, 5]))
        assert dict(zip(series.x, series.y)) == {1: 2, 2: 1, 5: 3}

    def test_max_value_filter(self):
        series = count_histogram(np.array([1, 2, 300]), max_value=250)
        assert 300 not in series.x


class TestCcdf:
    def test_starts_at_one(self, rng):
        series = ccdf(rng.random(1000) + 0.5)
        assert series.y[0] == pytest.approx(1.0)

    def test_decreasing(self, rng):
        series = ccdf(rng.random(1000) + 0.5)
        assert np.all(np.diff(series.y) < 0)

    def test_values_are_exceedance_probabilities(self):
        series = ccdf(np.array([1.0, 2.0, 3.0, 4.0]))
        assert series.y.tolist() == [1.0, 0.75, 0.5, 0.25]


class TestCdfSeries:
    def test_reaches_one(self, rng):
        values = rng.random(1000)
        series = cdf_series(values)
        assert series.y[-1] == pytest.approx(1.0)

    def test_zero_mass_counted(self):
        values = np.array([0.0, 0.0, 0.0, 10.0])
        series = cdf_series(values, grid=np.array([0.0, 5.0, 20.0]))
        assert series.y[0] == pytest.approx(0.75)

    def test_custom_grid(self):
        values = np.arange(1.0, 11.0)
        series = cdf_series(values, grid=np.array([5.0]))
        assert series.y[0] == pytest.approx(0.5)

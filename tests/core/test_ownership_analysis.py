"""Figures 4-5 analyses."""

import numpy as np
import pytest

from repro.core.ownership import genre_ownership, ownership_distribution


class TestOwnershipDistribution:
    @pytest.fixture(scope="class")
    def result(self, dataset):
        return ownership_distribution(dataset)

    def test_p80_anchors(self, result):
        assert result.p80_owned == pytest.approx(10, abs=1.5)
        assert result.p80_played == pytest.approx(7, abs=2.5)

    def test_played_below_owned(self, result):
        assert result.p80_played <= result.p80_owned

    def test_share_under_20(self, result):
        assert result.share_under_20 == pytest.approx(0.8978, abs=0.04)

    def test_owner_count(self, result, dataset):
        assert result.n_owners == int((dataset.owned_counts() > 0).sum())

    def test_render(self, result):
        text = result.render()
        assert "p80 owned" in text


class TestGenreOwnership:
    @pytest.fixture(scope="class")
    def result(self, dataset):
        return genre_ownership(dataset)

    def test_action_most_owned(self, result):
        ordered = result.ordered_by_ownership()
        assert ordered[0][0] == "Action"

    def test_unplayed_below_owned(self, result):
        assert np.all(result.unplayed_copies <= result.owned_copies)

    def test_unplayed_rates_near_paper(self, result):
        assert result.unplayed_rate("Action") == pytest.approx(
            0.4149, abs=0.06
        )
        assert result.unplayed_rate("RPG") == pytest.approx(0.2426, abs=0.06)

    def test_action_unplayed_above_rpg(self, result):
        assert result.unplayed_rate("Action") > result.unplayed_rate("RPG")

    def test_every_genre_present(self, result, dataset):
        assert result.genres == dataset.catalog.genre_names

    def test_render_sorted(self, result):
        lines = result.render().splitlines()
        assert lines[1].startswith("Action")

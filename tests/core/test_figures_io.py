"""Figure-data CSV exports."""

import csv

import pytest

from repro import SteamStudy
from repro.core.figures_io import FIGURE_FILES, export_figure_data


@pytest.fixture(scope="module")
def exported(small_world, tmp_path_factory):
    study = SteamStudy(world=small_world, _dataset=small_world.dataset)
    report = study.run(include_table4=False)
    outdir = tmp_path_factory.mktemp("figures")
    return export_figure_data(report, outdir), report


class TestFigureExport:
    def test_all_files_written(self, exported):
        outdir, _ = exported
        for name in FIGURE_FILES:
            assert (outdir / name).exists(), name

    def test_series_csv_parses(self, exported):
        outdir, _ = exported
        with open(outdir / "fig04_ownership.csv", encoding="utf-8") as fh:
            rows = list(csv.DictReader(fh))
        labels = {row["series"] for row in rows}
        assert labels == {"owned", "played"}
        assert all(float(row["density"]) > 0 for row in rows)

    def test_evolution_monotone(self, exported):
        outdir, _ = exported
        with open(outdir / "fig01_evolution.csv", encoding="utf-8") as fh:
            rows = list(csv.DictReader(fh))
        users = [
            float(row["cumulative"])
            for row in rows
            if row["series"] == "users"
        ]
        assert users == sorted(users)

    def test_genre_csv_matches_report(self, exported):
        outdir, report = exported
        with open(
            outdir / "fig05_genre_ownership.csv", encoding="utf-8"
        ) as fh:
            rows = list(csv.DictReader(fh))
        assert rows[0]["genre"] == "Action"
        total = sum(int(row["owned_copies"]) for row in rows)
        assert total == int(report.fig5_genre_ownership.owned_copies.sum())

    def test_panel_matrix_dimensions(self, exported):
        outdir, report = exported
        with open(outdir / "fig12_week_panel.csv", encoding="utf-8") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["user_rank"] + [f"day{d}" for d in range(1, 8)]
        assert len(rows) - 1 == report.fig12_week_panel.n_active

"""The supervised pipeline: manifest persistence and kill-resume.

The acceptance scenario for the crash-safety work: ``repro pipeline``
killed with SIGKILL after the crawl step must, on rerun, resume from
the manifest (crawl shows ``cached``, not re-crawled) and produce a
final report byte-identical to an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.pipeline import (
    PipelineConfigError,
    PipelineSupervisor,
    RunManifest,
    StepRecord,
    file_checksum,
)

#: Small but above the world generator's floor of 1000 users.
USERS = 1_200
SEED = 31


class TestRunManifest:
    def test_roundtrip(self, tmp_path):
        manifest = RunManifest.load(tmp_path / "manifest.json")
        manifest.config = {"users": 5, "seed": 1}
        record = manifest.step("crawl")
        record.status = "done"
        record.artifact = "crawled.npz"
        record.checksum = "abc"
        record.seed = 1
        manifest.steps_resumed = 2
        manifest.save()

        loaded = RunManifest.load(tmp_path / "manifest.json")
        assert loaded.config == {"users": 5, "seed": 1}
        assert loaded.steps_resumed == 2
        reloaded = loaded.step("crawl")
        assert reloaded.status == "done"
        assert reloaded.artifact == "crawled.npz"
        assert reloaded.checksum == "abc"

    def test_corrupt_manifest_starts_fresh_with_warning(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text('{"steps": {"crawl":')  # torn write
        with pytest.warns(RuntimeWarning, match="corrupt"):
            manifest = RunManifest.load(path)
        assert manifest.steps == {}

    def test_unknown_fields_ignored_on_load(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(
            json.dumps(
                {
                    "schema_version": 1,
                    "steps": {"crawl": {"status": "done", "future": 1}},
                }
            )
        )
        loaded = RunManifest.load(path)
        assert loaded.step("crawl").status == "done"

    def test_save_is_atomic_no_temp_left(self, tmp_path):
        manifest = RunManifest.load(tmp_path / "manifest.json")
        manifest.save()
        assert [p.name for p in tmp_path.iterdir()] == ["manifest.json"]

    def test_file_checksum_changes_with_content(self, tmp_path):
        a = tmp_path / "a"
        a.write_bytes(b"hello")
        before = file_checksum(a)
        a.write_bytes(b"hellp")
        assert file_checksum(a) != before

    def test_step_record_defaults(self):
        record = StepRecord(name="generate")
        assert record.status == "pending"
        assert record.attempts == 0


@pytest.fixture(scope="module")
def clean_run(tmp_path_factory):
    """One uninterrupted pipeline run — the byte-identity reference."""
    workdir = tmp_path_factory.mktemp("pipeline_clean")
    supervisor = PipelineSupervisor(
        workdir=workdir, users=USERS, seed=SEED,
        include_table4=False, http=False,
    )
    manifest = supervisor.run()
    return workdir, manifest


class TestSupervisor:
    def test_clean_run_completes_all_steps(self, clean_run):
        workdir, manifest = clean_run
        statuses = {n: r.status for n, r in manifest.steps.items()}
        assert statuses == {
            "generate": "done",
            "serve": "done",
            "crawl": "done",
            "analyze": "done",
        }
        for name in ("world.npz", "crawled.npz", "report.txt",
                     "manifest.json"):
            assert (workdir / name).exists()

    def test_artifact_checksums_recorded_and_valid(self, clean_run):
        workdir, manifest = clean_run
        for name in ("generate", "crawl", "analyze"):
            record = manifest.steps[name]
            assert record.checksum
            assert (
                file_checksum(workdir / record.artifact) == record.checksum
            )

    def test_rerun_marks_steps_cached_and_counts_resumes(self, clean_run):
        from repro.obs import Obs

        workdir, _ = clean_run
        report_before = (workdir / "report.txt").read_bytes()
        obs = Obs()
        supervisor = PipelineSupervisor(
            workdir=workdir, users=USERS, seed=SEED,
            include_table4=False, http=False, obs=obs,
        )
        manifest = supervisor.run()
        assert manifest.steps["generate"].status == "cached"
        assert manifest.steps["crawl"].status == "cached"
        assert manifest.steps["analyze"].status == "cached"
        assert manifest.steps["serve"].status == "skipped"
        assert supervisor.resumed_this_run == [
            "generate", "crawl", "analyze",
        ]
        assert obs.registry.get("pipeline_steps_resumed").value() == 3
        assert (workdir / "report.txt").read_bytes() == report_before

    def test_corrupt_artifact_forces_rerun_of_that_step(self, clean_run):
        workdir, _ = clean_run
        report_before = (workdir / "report.txt").read_bytes()
        (workdir / "report.txt").write_bytes(b"tampered")
        supervisor = PipelineSupervisor(
            workdir=workdir, users=USERS, seed=SEED,
            include_table4=False, http=False,
        )
        manifest = supervisor.run()
        # Upstream steps resume; the damaged one recomputes — to the
        # same bytes, because the inputs are checksummed and identical.
        assert manifest.steps["crawl"].status == "cached"
        assert manifest.steps["analyze"].status == "done"
        assert (workdir / "report.txt").read_bytes() == report_before

    def test_config_mismatch_refuses_to_mix_artifacts(self, clean_run):
        workdir, _ = clean_run
        supervisor = PipelineSupervisor(
            workdir=workdir, users=USERS, seed=SEED + 1,
            include_table4=False, http=False,
        )
        with pytest.raises(PipelineConfigError, match="fresh"):
            supervisor.run()


_PIPELINE_SCRIPT = """
import sys
from repro.cli import main
sys.exit(main([
    "pipeline", "--users", "{users}", "--seed", "{seed}",
    "--workdir", {workdir!r}, "--skip-table4", "--no-http",
]))
"""


def _spawn_pipeline(workdir: Path) -> subprocess.Popen:
    env = dict(os.environ)
    root = Path(__file__).resolve().parents[2]
    env["PYTHONPATH"] = str(root / "src")
    return subprocess.Popen(
        [
            sys.executable,
            "-c",
            _PIPELINE_SCRIPT.format(
                users=USERS, seed=SEED, workdir=str(workdir)
            ),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_for_step(workdir: Path, step: str, timeout: float) -> None:
    """Poll the manifest until ``step`` is done (or the wait times out)."""
    manifest_path = workdir / "manifest.json"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if manifest_path.exists():
            try:
                data = json.loads(manifest_path.read_text())
            except ValueError:
                data = {}
            status = data.get("steps", {}).get(step, {}).get("status")
            if status == "done":
                return
        time.sleep(0.05)
    raise AssertionError(f"step {step} never reached done within {timeout}s")


class TestKillResume:
    def test_sigkill_after_crawl_resumes_without_recrawling(
        self, clean_run, tmp_path
    ):
        clean_workdir, _ = clean_run
        reference = (clean_workdir / "report.txt").read_bytes()

        workdir = tmp_path / "killed"
        proc = _spawn_pipeline(workdir)
        try:
            _wait_for_step(workdir, "crawl", timeout=120)
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=30)
        assert not (workdir / "report.txt").exists()

        # Rerun in-process: crawl must come back cached, not re-run.
        supervisor = PipelineSupervisor(
            workdir=workdir, users=USERS, seed=SEED,
            include_table4=False, http=False,
        )
        manifest = supervisor.run()
        assert manifest.steps["crawl"].status == "cached"
        assert manifest.steps["generate"].status == "cached"
        assert manifest.steps["analyze"].status == "done"
        assert "crawl" in supervisor.resumed_this_run
        assert (workdir / "report.txt").read_bytes() == reference


class TestTracePropagation:
    """The supervisor exports REPRO_TRACE for the duration of the run so
    spawned subprocesses join the trace, and restores the environment
    afterwards (DESIGN.md §10)."""

    def _supervisor(self, tmp_path, obs):
        return PipelineSupervisor(
            workdir=tmp_path / "run",
            users=USERS,
            seed=SEED,
            include_table4=False,
            http=False,
            obs=obs,
        )

    def test_trace_exported_during_run_and_restored(
        self, tmp_path, monkeypatch
    ):
        from repro.obs import TRACE_ENV_VAR, Obs, TraceContext

        monkeypatch.setenv(TRACE_ENV_VAR, "sentinel-from-outside")
        seen = {}
        orig = PipelineSupervisor._step_generate

        def spy(self, manifest):
            seen["during"] = os.environ.get(TRACE_ENV_VAR)
            return orig(self, manifest)

        monkeypatch.setattr(PipelineSupervisor, "_step_generate", spy)
        obs = Obs(trace=TraceContext.new(seed=SEED))
        self._supervisor(tmp_path, obs).run()
        assert seen["during"] == obs.trace.value()
        assert os.environ[TRACE_ENV_VAR] == "sentinel-from-outside"

    def test_untraced_run_leaves_env_alone(self, tmp_path, monkeypatch):
        from repro.obs import TRACE_ENV_VAR

        monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
        self._supervisor(tmp_path, obs=None).run()
        assert TRACE_ENV_VAR not in os.environ

    def test_span_tree_covers_every_step_under_one_trace(self, tmp_path):
        from repro.obs import Obs, TraceContext

        obs = Obs(trace=TraceContext.new(seed=SEED))
        self._supervisor(tmp_path, obs).run()
        totals = obs.tracer.aggregate()
        for name in ("pipeline", "generate", "crawl", "analyze"):
            assert totals[name]["count"] == 1, name
        (pipeline,) = obs.tracer.snapshot()
        assert pipeline["name"] == "pipeline"
        assert pipeline["span_id"] == 1

        def ids(snap):
            yield snap["span_id"]
            for child in snap["children"]:
                yield from ids(child)

        all_ids = list(ids(pipeline))
        assert len(set(all_ids)) == len(all_ids)

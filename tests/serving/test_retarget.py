"""Targeted response-cache invalidation across a delta store swap.

``swap_store(store, delta)`` must evict exactly the entries the delta
could have changed and re-key the rest under the new fingerprint so
they keep serving hits (DESIGN.md §12).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants
from repro.delta.model import DatasetDelta, dataset_delta
from repro.serving import AnalyticsService, AnalyticsStore
from repro.simworld.evolution import EvolveConfig, evolve


@pytest.fixture(scope="module")
def swap_pair(small_world):
    """Prior store, evolved store, and the delta linking them — a
    playtime-only 1% step, the canonical narrow delta."""
    cfg = EvolveConfig(
        account_growth=0.0,
        buy_rate=0.0,
        friend_form_rate=0.0,
        friend_drop_rate=0.0,
        play_rate=0.01,
    )
    step = next(evolve(small_world, steps=1, seed=17, config=cfg))
    prior_ds = small_world.dataset
    delta = dataset_delta(
        prior_ds,
        step.dataset,
        changed_steamids=step.delta.changed_offsets
        + constants.STEAMID_BASE,
        new_steamids=step.delta.new_offsets + constants.STEAMID_BASE,
    )
    prior_store = AnalyticsStore.build(prior_ds, max_tail=2_000)
    new_store = AnalyticsStore.build(step.dataset, max_tail=2_000)
    return prior_store, new_store, delta


class TestRetargetSwap:
    def test_untouched_attribute_entry_survives_and_hits(self, swap_pair):
        prior_store, new_store, delta = swap_pair
        service = AnalyticsService(prior_store)
        before = service.dispatch("/tailfit/friends", {})
        stats = service.swap_store(new_store, delta)
        assert stats is not None
        assert stats["retargeted"] >= 1
        # The survivor answers under the NEW fingerprint without
        # recomputing — and byte-identically, since a playtime delta
        # cannot move the friend-degree distribution.
        hits_before = service.cache.stats()["hits"]
        assert service.dispatch("/tailfit/friends", {}) == before
        assert service.cache.stats()["hits"] == hits_before + 1

    def test_stale_attribute_entry_is_evicted(self, swap_pair):
        prior_store, new_store, delta = swap_pair
        service = AnalyticsService(prior_store)
        path = "/distributions/total_playtime_hours/percentile"
        service.dispatch(path, {"q": "95"})
        stats = service.swap_store(new_store, delta)
        assert stats["evicted"] >= 1
        hits_before = service.cache.stats()["hits"]
        after = service.dispatch(path, {"q": "95"})
        # Recomputed, not served stale: no hit, and the payload is what
        # the new store computes fresh.
        assert service.cache.stats()["hits"] == hits_before
        assert after == new_store.distribution_percentile(
            "total_playtime_hours", 95
        )

    def test_neighborhood_of_unaffected_user_survives(self, swap_pair):
        prior_store, new_store, delta = swap_pair
        changed = {int(s) for s in delta.changed_steamids}
        sids = prior_store.dataset.accounts.steamids()
        target = None
        for u in range(len(sids)):
            sid = int(sids[u])
            if sid in changed:
                continue
            payload = prior_store.user_neighborhood(sid)
            if payload["friends"] and all(
                f["steamid"] not in changed for f in payload["friends"]
            ):
                target = sid
                break
        assert target is not None, "no fully-unaffected user found"

        service = AnalyticsService(prior_store)
        path = f"/users/{target}/neighborhood"
        before = service.dispatch(path, {})
        service.swap_store(new_store, delta)
        hits_before = service.cache.stats()["hits"]
        assert service.dispatch(path, {}) == before
        assert service.cache.stats()["hits"] == hits_before + 1

    def test_changed_user_summary_is_evicted(self, swap_pair):
        prior_store, new_store, delta = swap_pair
        target = int(delta.changed_steamids[0])
        service = AnalyticsService(prior_store)
        path = f"/users/{target}/summary"
        service.dispatch(path, {})
        service.swap_store(new_store, delta)
        hits_before = service.cache.stats()["hits"]
        after = service.dispatch(path, {})
        assert service.cache.stats()["hits"] == hits_before
        assert after == new_store.user_summary(target)

    def test_mismatched_delta_falls_back_to_structural(self, swap_pair):
        prior_store, new_store, _ = swap_pair
        service = AnalyticsService(prior_store)
        before = service.dispatch("/tailfit/friends", {})
        bogus = DatasetDelta(
            prior_fingerprint="not-the-prior",
            fingerprint=new_store.fingerprint,
        )
        assert service.swap_store(new_store, bogus) is None
        # Old entries die structurally: the same question misses (its
        # old key embeds the old fingerprint) and is recomputed.
        hits_before = service.cache.stats()["hits"]
        after = service.dispatch("/tailfit/friends", {})
        assert service.cache.stats()["hits"] == hits_before
        # Still the same answer — friends never moved — just recomputed.
        assert after == before

    def test_swap_without_delta_returns_none(self, swap_pair):
        prior_store, new_store, _ = swap_pair
        service = AnalyticsService(prior_store)
        assert service.swap_store(new_store) is None

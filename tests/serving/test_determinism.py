"""The serving tier's determinism and caching contract:

- parallel store builds are byte-identical to serial ones,
- a warm stage cache rebuilds the store without executing any stage,
- any dataset mutation (new fingerprint) invalidates both the stage
  cache and the response cache structurally,
- concurrent HTTP clients asking the same question get the same bytes.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.engine import StageCache
from repro.serving import AnalyticsService, AnalyticsStore, serve_analytics

from tests.serving.conftest import make_tiny_dataset


def _all_route_bodies(store: AnalyticsStore, dataset) -> dict[str, str]:
    """Canonical JSON for a representative query of every route."""
    service = AnalyticsService(store)
    steamid = int(dataset.accounts.steamids()[0])
    appid = int(dataset.catalog.appid[0])
    queries = {
        "summary": (f"/users/{steamid}/summary", {}),
        "neighborhood": (f"/users/{steamid}/neighborhood", {"limit": "5"}),
        "apps": (f"/apps/{appid}/stats", {}),
        "percentile": ("/distributions/friends/percentile", {"q": "95"}),
        "rank": ("/distributions/owned_games/rank", {"value": "10"}),
        "tailfit": ("/tailfit/owned_games", {}),
        "homophily": ("/homophily/market_value", {}),
    }
    return {
        name: json.dumps(service.dispatch(path, params), sort_keys=True)
        for name, (path, params) in queries.items()
    }


def test_parallel_build_is_byte_identical(small_dataset):
    serial = AnalyticsStore.build(small_dataset, jobs=1, max_tail=2_000)
    parallel = AnalyticsStore.build(small_dataset, jobs=2, max_tail=2_000)
    assert parallel.build_run.jobs == 2
    assert _all_route_bodies(serial, small_dataset) == _all_route_bodies(
        parallel, small_dataset
    )


def test_warm_cache_executes_zero_stages(tmp_path, small_dataset):
    cache = StageCache(tmp_path / "stages")
    cold = AnalyticsStore.build(small_dataset, cache=cache, max_tail=2_000)
    assert len(cold.build_run.executed) == cold.build_run.n_stages
    warm = AnalyticsStore.build(small_dataset, cache=cache, max_tail=2_000)
    assert warm.build_run.executed == ()
    assert len(warm.build_run.cached) == warm.build_run.n_stages
    assert _all_route_bodies(cold, small_dataset) == _all_route_bodies(
        warm, small_dataset
    )


def test_dataset_mutation_invalidates_stage_cache(tmp_path):
    dataset = make_tiny_dataset(1, owned=((1, 120, 30),))
    cache = StageCache(tmp_path / "stages")
    first = AnalyticsStore.build(dataset, cache=cache)
    assert len(first.build_run.executed) == first.build_run.n_stages

    # Reprice a product: stages are keyed by the columns they read, so
    # exactly the price-reading stages re-execute and the rest stay
    # cached.
    mutated = dataclasses.replace(
        dataset,
        catalog=dataclasses.replace(
            dataset.catalog,
            price_cents=np.array([0, 999], dtype=np.int64),
        ),
    )
    assert mutated.fingerprint() != dataset.fingerprint()
    rebuilt = AnalyticsStore.build(mutated, cache=cache)
    executed = set(rebuilt.build_run.executed)
    assert executed == {
        "serving_index:market_value",
        "serving_tailfit:market_value",
        "serving_homophily",
    }
    assert set(rebuilt.build_run.cached) == {
        name
        for name in first.build_run.executed
        if name not in executed
    }
    # And the mutation is visible in the served payloads.
    assert (
        rebuilt.user_summary(dataset.accounts.steamids()[0])["attributes"][
            "market_value"
        ]["value"]
        == 9.99
    )


def test_store_swap_invalidates_response_cache():
    dataset = make_tiny_dataset(1, owned=((1, 120, 30),))
    service = AnalyticsService(AnalyticsStore.build(dataset))
    path = "/distributions/market_value/percentile"
    before = service.dispatch(path, {"q": "50"})
    assert before["value"] == 4.99

    mutated = dataclasses.replace(
        dataset,
        catalog=dataclasses.replace(
            dataset.catalog,
            price_cents=np.array([0, 999], dtype=np.int64),
        ),
    )
    service.swap_store(AnalyticsStore.build(mutated))
    after = service.dispatch(path, {"q": "50"})
    assert after["value"] == 9.99
    # Both responses were computed (distinct keys), never cross-served.
    assert service.cache.stats()["hits"] == 0


def test_concurrent_clients_get_identical_bytes(
    serving_store, small_dataset
):
    server = serve_analytics(serving_store, access_log=False)
    steamid = int(small_dataset.accounts.steamids()[3])
    paths = (
        f"/users/{steamid}/summary",
        "/distributions/friends/percentile?q=99",
        "/tailfit/owned_games",
    )
    results: dict[tuple[str, int], bytes] = {}
    errors: list[Exception] = []

    def client(worker: int) -> None:
        try:
            for path in paths:
                with urllib.request.urlopen(
                    server.base_url + path, timeout=30
                ) as response:
                    results[(path, worker)] = response.read()
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(8)
    ]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
    finally:
        server.close()
    assert not errors
    for path in paths:
        bodies = {results[(path, i)] for i in range(8)}
        assert len(bodies) == 1, f"divergent bodies for {path}"

"""Admission control and circuit breaking, driven by a fake clock."""

from __future__ import annotations

import threading

import pytest

from repro.obs import Obs
from repro.obs.clock import FakeClock
from repro.serving.admission import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    AdmissionConfig,
    AdmissionController,
    CircuitBreaker,
)
from repro.steamapi.errors import OverloadedError, RateLimitedError


class TestConfigValidation:
    def test_rejects_nonpositive_inflight(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_inflight=0)

    def test_rejects_bad_route_limits(self):
        with pytest.raises(ValueError):
            AdmissionConfig(per_route={"/x": 0})

    def test_rejects_bad_retry_range(self):
        with pytest.raises(ValueError):
            AdmissionConfig(retry_after=(0.5, 0.1))

    def test_rejects_negative_breaker_threshold(self):
        with pytest.raises(ValueError):
            AdmissionConfig(breaker_threshold=-1)


class TestCapacityShedding:
    def test_admits_up_to_the_global_budget(self):
        controller = AdmissionController(AdmissionConfig(max_inflight=2))
        with controller.admit("/a"):
            with controller.admit("/b"):
                assert controller.inflight == 2
                with pytest.raises(OverloadedError) as excinfo:
                    with controller.admit("/c"):
                        pass
                assert excinfo.value.reason == "capacity"
                assert excinfo.value.status == 429
                assert excinfo.value.retry_after > 0
        assert controller.inflight == 0

    def test_slots_are_released_on_handler_error(self):
        controller = AdmissionController(AdmissionConfig(max_inflight=1))
        with pytest.raises(RuntimeError):
            with controller.admit("/a"):
                raise RuntimeError("handler blew up")
        # The slot came back: the next request is admitted.
        with controller.admit("/a"):
            assert controller.inflight == 1

    def test_per_route_cap_sheds_with_route_reason(self):
        controller = AdmissionController(
            AdmissionConfig(max_inflight=10, per_route={"/hot": 1})
        )
        with controller.admit("/hot"):
            with pytest.raises(OverloadedError) as excinfo:
                with controller.admit("/hot"):
                    pass
            assert excinfo.value.reason == "route"
            # Other routes still get the global budget.
            with controller.admit("/cold"):
                pass
        assert controller.shed_counts["route"] == 1

    def test_shed_is_a_rate_limited_429_to_clients(self):
        controller = AdmissionController(AdmissionConfig(max_inflight=1))
        with controller.admit("/a"):
            with pytest.raises(RateLimitedError):
                with controller.admit("/a"):
                    pass

    def test_retry_after_jitter_is_seeded(self):
        def hints(seed: int) -> list[float]:
            controller = AdmissionController(
                AdmissionConfig(max_inflight=1, seed=seed)
            )
            collected = []
            with controller.admit("/a"):
                for _ in range(5):
                    try:
                        with controller.admit("/a"):
                            pass
                    except OverloadedError as exc:
                        collected.append(exc.retry_after)
            return collected

        assert hints(7) == hints(7)
        assert hints(7) != hints(8)
        lo, hi = AdmissionConfig().retry_after
        assert all(lo <= hint <= hi for hint in hints(7))

    def test_concurrent_admission_never_exceeds_budget(self):
        config = AdmissionConfig(max_inflight=4)
        controller = AdmissionController(config)
        peak = [0]
        peak_lock = threading.Lock()
        shed = [0]

        def worker():
            for _ in range(50):
                try:
                    with controller.admit("/a"):
                        with peak_lock:
                            peak[0] = max(peak[0], controller.inflight)
                except OverloadedError:
                    with peak_lock:
                        shed[0] += 1

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert peak[0] <= 4
        assert controller.inflight == 0
        assert controller.admitted + shed[0] == 8 * 50


class TestCircuitBreaker:
    def test_trips_after_consecutive_timeouts(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown=5.0, clock=clock)
        for _ in range(2):
            breaker.record_timeout()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.record_timeout() == BREAKER_OPEN
        allowed, retry_after = breaker.allow()
        assert not allowed
        assert retry_after == pytest.approx(5.0)

    def test_success_resets_the_consecutive_count(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown=5.0, clock=clock)
        breaker.record_timeout()
        breaker.record_timeout()
        breaker.record_success()
        breaker.record_timeout()
        breaker.record_timeout()
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_admits_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_timeout()
        assert breaker.state == BREAKER_OPEN
        clock.advance(5.1)
        allowed, _ = breaker.allow()
        assert allowed  # the probe
        assert breaker.state == BREAKER_HALF_OPEN
        allowed, _ = breaker.allow()
        assert not allowed  # only one probe at a time

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_timeout()
        clock.advance(5.1)
        assert breaker.allow()[0]
        assert breaker.record_success() == BREAKER_CLOSED
        assert breaker.allow() == (True, 0.0)

    def test_probe_timeout_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown=5.0, clock=clock)
        for _ in range(3):
            breaker.record_timeout()
        clock.advance(5.1)
        assert breaker.allow()[0]
        # One bad probe re-opens immediately, no need for 3 more.
        assert breaker.record_timeout() == BREAKER_OPEN
        assert not breaker.allow()[0]

    def test_abandoned_probe_frees_the_slot(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_timeout()
        clock.advance(5.1)
        assert breaker.allow()[0]  # the probe
        # The probe died on a 404: the state stays half-open but the
        # slot comes back, so the next request can probe again.
        breaker.record_abandoned()
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.allow()[0]
        assert breaker.record_success() == BREAKER_CLOSED

    def test_zero_threshold_disables(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=0, cooldown=5.0, clock=clock)
        for _ in range(100):
            breaker.record_timeout()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow() == (True, 0.0)


class TestControllerBreakerIntegration:
    def _controller(self, **overrides):
        clock = FakeClock()
        config = AdmissionConfig(
            max_inflight=16,
            breaker_threshold=2,
            breaker_cooldown=10.0,
            **overrides,
        )
        return AdmissionController(config, clock=clock), clock

    def test_timeouts_trip_and_shed_with_breaker_reason(self):
        controller, clock = self._controller()
        controller.record_timeout("/slow")
        controller.record_timeout("/slow")
        assert controller.breaker_states() == {"/slow": BREAKER_OPEN}
        with pytest.raises(OverloadedError) as excinfo:
            with controller.admit("/slow"):
                pass
        assert excinfo.value.reason == "breaker"
        # Retry-After covers at least the remaining cooldown.
        assert excinfo.value.retry_after >= 9.0
        # Other routes are unaffected.
        with controller.admit("/fine"):
            pass

    def test_breaker_recovers_through_a_probe(self):
        controller, clock = self._controller()
        controller.record_timeout("/slow")
        controller.record_timeout("/slow")
        clock.advance(10.1)
        with controller.admit("/slow"):  # the half-open probe
            pass
        controller.record_success("/slow")
        assert controller.breaker_states() == {"/slow": BREAKER_CLOSED}
        with controller.admit("/slow"):
            pass

    def test_capacity_shed_never_consumes_the_probe_slot(self):
        """Regression: a would-be probe arriving while the global
        budget is full must shed on capacity *without* claiming the
        half-open slot — a leaked slot wedges the route into breaker
        429s forever (nothing is ever admitted to close or re-open)."""
        clock = FakeClock()
        controller = AdmissionController(
            AdmissionConfig(
                max_inflight=1, breaker_threshold=2, breaker_cooldown=10.0
            ),
            clock=clock,
        )
        controller.record_timeout("/slow")
        controller.record_timeout("/slow")
        clock.advance(10.1)
        with controller.admit("/other"):  # budget is now full
            with pytest.raises(OverloadedError) as excinfo:
                with controller.admit("/slow"):
                    pass
            assert excinfo.value.reason == "capacity"
        # Budget freed: the probe is still available and recovery works.
        with controller.admit("/slow"):
            pass
        controller.record_success("/slow")
        assert controller.breaker_states()["/slow"] == BREAKER_CLOSED

    def test_abandoned_probe_keeps_recovery_possible(self):
        """Regression: a probe that fails for a non-deadline reason
        (404, handler bug) must release the slot so a later probe can
        still close the breaker."""
        controller, clock = self._controller()
        controller.record_timeout("/slow")
        controller.record_timeout("/slow")
        clock.advance(10.1)
        with pytest.raises(RuntimeError):
            with controller.admit("/slow"):  # the probe
                raise RuntimeError("probe died on a non-timeout error")
        controller.record_abandoned("/slow")
        assert controller.breaker_states()["/slow"] == BREAKER_HALF_OPEN
        with controller.admit("/slow"):  # probes again
            pass
        controller.record_success("/slow")
        assert controller.breaker_states()["/slow"] == BREAKER_CLOSED

    def test_stats_shape(self):
        controller, _ = self._controller()
        with controller.admit("/a"):
            stats = controller.stats()
        assert stats["inflight"] == 1
        assert stats["admitted"] == 1
        assert stats["shed"] == {"capacity": 0, "route": 0, "breaker": 0}
        assert stats["breakers_open"] == 0


class TestMetrics:
    def test_shed_and_timeout_counters(self):
        obs = Obs()
        controller = AdmissionController(
            AdmissionConfig(max_inflight=1, breaker_threshold=0), obs=obs
        )
        with controller.admit("/a"):
            for _ in range(3):
                with pytest.raises(OverloadedError):
                    with controller.admit("/a"):
                        pass
        controller.record_timeout("/a")
        shed = obs.counter("serving_shed", labelnames=("route", "reason"))
        assert shed.value(route="/a", reason="capacity") == 3
        timeouts = obs.counter(
            "serving_deadline_timeouts", labelnames=("route",)
        )
        assert timeouts.value(route="/a") == 1

    def test_inflight_gauge_tracks(self):
        obs = Obs()
        controller = AdmissionController(AdmissionConfig(), obs=obs)
        gauge = obs.gauge("serving_inflight")
        with controller.admit("/a"):
            assert gauge.value() == 1
        assert gauge.value() == 0

    def test_breaker_transitions_are_counted(self):
        obs = Obs()
        clock = FakeClock()
        controller = AdmissionController(
            AdmissionConfig(breaker_threshold=1, breaker_cooldown=1.0),
            obs=obs,
            clock=clock,
        )
        controller.record_timeout("/a")
        clock.advance(1.1)
        with controller.admit("/a"):
            pass
        controller.record_success("/a")
        transitions = obs.counter(
            "serving_breaker_transitions", labelnames=("route", "state")
        )
        assert transitions.value(route="/a", state=BREAKER_OPEN) == 1
        assert transitions.value(route="/a", state=BREAKER_CLOSED) == 1

"""Degenerate-population regressions: empty and single-user datasets.

Before the percentile hardening, an empty engaged population reached
``np.quantile`` / ``searchsorted`` and surfaced as ``IndexError`` or
``ZeroDivisionError`` — a 500 at the HTTP layer.  These tests pin the
typed-4xx behavior end to end.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import constants
from repro.core.percentiles import ATTRIBUTES
from repro.serving import AnalyticsStore, serve_analytics
from repro.steamapi.errors import ApiError, BadRequestError, NotFoundError

from tests.serving.conftest import make_tiny_dataset


@pytest.fixture(scope="module")
def empty_store() -> AnalyticsStore:
    return AnalyticsStore.build(make_tiny_dataset(0))


@pytest.fixture(scope="module")
def single_store() -> AnalyticsStore:
    # One user owning one game: 120 lifetime minutes, 30 recent.
    return AnalyticsStore.build(
        make_tiny_dataset(1, owned=((1, 120, 30),))
    )


class TestEmptyDataset:
    def test_build_succeeds(self, empty_store):
        assert empty_store.dataset.n_users == 0
        for name in ATTRIBUTES:
            assert empty_store.indexes[name].population == 0

    def test_percentile_is_typed_404_not_crash(self, empty_store):
        for name in ATTRIBUTES:
            with pytest.raises(NotFoundError, match="no engaged users"):
                empty_store.distribution_percentile(name, 50.0)

    def test_rank_is_typed_404(self, empty_store):
        with pytest.raises(NotFoundError):
            empty_store.distribution_rank("friends", 1.0)

    def test_tailfit_is_typed_404(self, empty_store):
        with pytest.raises(NotFoundError, match="too few engaged users"):
            empty_store.tailfit_payload("friends")

    def test_any_user_is_404(self, empty_store):
        with pytest.raises(NotFoundError):
            empty_store.user_summary(constants.STEAMID_BASE)

    def test_all_errors_are_api_errors(self, empty_store):
        # The contract the HTTP layer relies on: nothing but ApiError
        # (→ 4xx JSON) escapes a degenerate population.
        probes = (
            lambda: empty_store.distribution_percentile("friends", 50.0),
            lambda: empty_store.distribution_rank("friends", 0.5),
            lambda: empty_store.tailfit_payload("owned_games"),
            lambda: empty_store.user_summary(constants.STEAMID_BASE + 5),
            lambda: empty_store.app_stats_payload(123456),
        )
        for probe in probes:
            with pytest.raises(ApiError):
                probe()


class TestSingleUserDataset:
    def test_summary_works(self, single_store):
        steamid = constants.STEAMID_BASE
        payload = single_store.user_summary(steamid)
        assert payload["attributes"]["owned_games"]["value"] == 1.0
        assert payload["attributes"]["owned_games"]["percentile"] == 100.0
        assert payload["attributes"]["friends"]["percentile"] is None

    def test_percentile_of_population_of_one(self, single_store):
        payload = single_store.distribution_percentile("owned_games", 50.0)
        assert payload["value"] == 1.0
        assert payload["population"] == 1

    def test_endpoints_of_range(self, single_store):
        for q in (0.0, 100.0):
            payload = single_store.distribution_percentile(
                "total_playtime_hours", q
            )
            assert payload["value"] == 2.0  # 120 minutes

    def test_bad_q_still_400(self, single_store):
        for q in (-1.0, 101.0, float("nan")):
            with pytest.raises(BadRequestError):
                single_store.distribution_percentile("owned_games", q)

    def test_empty_attribute_of_nonempty_dataset_404(self, single_store):
        # The one user has no group memberships: population 0 for that
        # attribute even though the dataset itself is non-empty.
        with pytest.raises(NotFoundError):
            single_store.distribution_percentile("group_memberships", 50.0)


class TestDegenerateOverHttp:
    def test_single_user_server_maps_errors(self, single_store):
        server = serve_analytics(single_store, access_log=False)
        try:
            base = server.base_url
            with urllib.request.urlopen(
                base + "/distributions/owned_games/percentile?q=50",
                timeout=10,
            ) as response:
                assert response.status == 200
                assert json.loads(response.read())["value"] == 1.0
            for path, expected in (
                ("/distributions/owned_games/percentile?q=101", 400),
                ("/distributions/owned_games/percentile?q=nan", 400),
                ("/distributions/group_memberships/percentile?q=50", 404),
                ("/tailfit/friends", 404),
                (f"/users/{constants.STEAMID_BASE + 99}/summary", 404),
            ):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(base + path, timeout=10)
                assert excinfo.value.code == expected, path
        finally:
            server.close()

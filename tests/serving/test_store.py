"""AnalyticsStore unit tests against the shared small world."""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants
from repro.core.percentiles import ATTRIBUTES, attribute_values
from repro.steamapi.errors import BadRequestError, NotFoundError


class TestBuild:
    def test_all_stages_present(self, serving_store):
        assert set(serving_store.indexes) == set(ATTRIBUTES)
        assert set(serving_store.tailfits) == set(ATTRIBUTES)
        assert serving_store.build_run is not None
        assert serving_store.build_run.n_stages == 2 * len(ATTRIBUTES) + 2

    def test_indexes_sorted_and_nonzero(self, serving_store, small_dataset):
        for name in ATTRIBUTES:
            index = serving_store.indexes[name]
            assert np.all(np.diff(index.sorted_values) >= 0)
            assert np.all(index.sorted_values > 0)
            assert index.n_users == small_dataset.n_users

    def test_fingerprint_matches_dataset(self, serving_store, small_dataset):
        assert serving_store.fingerprint == small_dataset.fingerprint()


class TestUserQueries:
    def test_summary_fields(self, serving_store, small_dataset):
        steamid = int(small_dataset.accounts.steamids()[7])
        payload = serving_store.user_summary(steamid)
        assert payload["steamid"] == steamid
        assert set(payload["attributes"]) == set(ATTRIBUTES)
        friends = payload["attributes"]["friends"]
        assert friends["value"] == float(
            small_dataset.friend_counts()[7]
        )

    def test_summary_percentile_matches_population(
        self, serving_store, small_dataset
    ):
        values = attribute_values(small_dataset)["friends"]
        idx = int(np.argmax(values))  # the best-connected user
        steamid = int(small_dataset.accounts.steamids()[idx])
        payload = serving_store.user_summary(steamid)
        assert payload["attributes"]["friends"]["percentile"] == 100.0

    def test_inactive_attribute_has_no_percentile(
        self, serving_store, small_dataset
    ):
        values = attribute_values(small_dataset)["owned_games"]
        zeros = np.flatnonzero(values == 0)
        assert len(zeros), "expected some game-less users in the small world"
        steamid = int(small_dataset.accounts.steamids()[zeros[0]])
        payload = serving_store.user_summary(steamid)
        assert payload["attributes"]["owned_games"]["percentile"] is None

    def test_unknown_user_404(self, serving_store):
        with pytest.raises(NotFoundError):
            serving_store.user_summary(constants.STEAMID_BASE + 10**9)

    def test_malformed_steamid_400(self, serving_store):
        with pytest.raises(BadRequestError):
            serving_store.user_summary(7)

    def test_neighborhood_matches_adjacency(
        self, serving_store, small_dataset
    ):
        degrees = small_dataset.friend_counts()
        idx = int(np.argmax(degrees))
        steamid = int(small_dataset.accounts.steamids()[idx])
        payload = serving_store.user_neighborhood(steamid, limit=5)
        assert payload["degree"] == int(degrees[idx])
        assert payload["returned"] == min(5, int(degrees[idx]))
        adj, _ = small_dataset.friends.adjacency()
        expected = small_dataset.accounts.steamids()[adj.row(idx)[:5]]
        assert [f["steamid"] for f in payload["friends"]] == list(expected)

    def test_neighborhood_limit_validated(self, serving_store, small_dataset):
        steamid = int(small_dataset.accounts.steamids()[0])
        for bad in (0, -1, 1001):
            with pytest.raises(BadRequestError):
                serving_store.user_neighborhood(steamid, limit=bad)


class TestAppQueries:
    def test_stats_match_library_aggregates(
        self, serving_store, small_dataset
    ):
        library = small_dataset.library
        n = small_dataset.n_products
        owners = library.app_owner_counts(n)
        idx = int(np.argmax(owners))  # the most-owned product
        appid = int(small_dataset.catalog.appid[idx])
        payload = serving_store.app_stats_payload(appid)
        assert payload["owners"] == int(owners[idx])
        assert payload["players"] == int(library.app_player_counts(n)[idx])
        assert payload["total_playtime_hours"] == round(
            float(library.app_total_min(n)[idx]) / 60.0, 2
        )
        assert payload["ownership_percentile"] == 100.0

    def test_unknown_app_404(self, serving_store):
        with pytest.raises(NotFoundError):
            serving_store.app_stats_payload(99_999_999)


class TestDistributionQueries:
    def test_percentile_matches_numpy_rank_inverse(self, serving_store):
        index = serving_store.indexes["friends"]
        payload = serving_store.distribution_percentile("friends", 50.0)
        assert payload["population"] == index.population
        # The returned value sits at (or just past) the median slot.
        rank = serving_store.distribution_rank("friends", payload["value"])
        assert rank["percentile"] >= 50.0

    def test_endpoints_of_range(self, serving_store):
        index = serving_store.indexes["friends"]
        low = serving_store.distribution_percentile("friends", 0.0)
        high = serving_store.distribution_percentile("friends", 100.0)
        assert low["value"] == float(index.sorted_values[0])
        assert high["value"] == float(index.sorted_values[-1])

    def test_unknown_attribute_404(self, serving_store):
        with pytest.raises(NotFoundError):
            serving_store.distribution_percentile("bogus", 50.0)
        with pytest.raises(NotFoundError):
            serving_store.distribution_rank("bogus", 1.0)

    @pytest.mark.parametrize("q", [-0.5, 100.5, float("nan")])
    def test_bad_q_is_typed_400(self, serving_store, q):
        with pytest.raises(BadRequestError):
            serving_store.distribution_percentile("friends", q)

    def test_nan_rank_probe_is_typed_400(self, serving_store):
        with pytest.raises(BadRequestError):
            serving_store.distribution_rank("friends", float("nan"))


class TestDerivedQueries:
    def test_tailfit_payload_shape(self, serving_store):
        payload = serving_store.tailfit_payload("owned_games")
        assert payload["attribute"] == "owned_games"
        assert set(payload["families"]) == {
            "power_law",
            "exponential",
            "lognormal",
            "truncated_power_law",
        }
        assert set(payload["comparisons"]) == {
            "pl_vs_exp",
            "pl_vs_ln",
            "tpl_vs_pl",
            "tpl_vs_ln",
        }

    def test_homophily_payload(self, serving_store):
        payload = serving_store.homophily_payload("market_value")
        assert payload["attribute"] == "market_value"
        assert payload["paper_rho"] == pytest.approx(0.77)
        assert payload["population"] > 0

    def test_unknown_homophily_attribute_404(self, serving_store):
        with pytest.raises(NotFoundError):
            serving_store.homophily_payload("bogus")

    def test_describe(self, serving_store, small_dataset):
        payload = serving_store.describe()
        assert payload["status"] == "ok"
        assert payload["n_users"] == small_dataset.n_users
        assert payload["fingerprint"] == small_dataset.fingerprint()

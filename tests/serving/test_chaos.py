"""Seeded chaos on the analytics read path.

The acceptance bar (DESIGN.md §14): under injected stalls, aborts,
crashes, and a request storm past capacity, the server never emits a
resource-exhaustion 5xx — excess is shed with 429 + ``Retry-After``,
injected crashes are contained as opaque 500s, aborts surface to
clients as incomplete reads — and every *accepted* (HTTP 200) response
is byte-identical to an unloaded run.  Fault sequences are pure
functions of the plan seed, so all of this is deterministic.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

import random

from repro.obs import Obs
from repro.serving import (
    AdmissionConfig,
    AnalyticsService,
    ChaosAnalyticsService,
    ChaosDispatch,
    ServingFaultPlan,
    ServingFaultSpec,
    serve_analytics,
)
from repro.serving.chaos import InjectedCrash, run_storm
from repro.steamapi.deadline import DEADLINE_HEADER
from repro.steamapi.faults import AbortedResponse


def _echo(path, params):
    return {"path": path, "params": params}


class TestChaosDispatch:
    def test_fault_sequence_is_seeded(self):
        plan = ServingFaultPlan(
            seed=11,
            default=ServingFaultSpec(stall=0.2, abort=0.2, crash=0.2),
        )

        def drive(chaos):
            outcomes = []
            for i in range(200):
                try:
                    chaos(f"/req/{i}", {})
                    outcomes.append("ok")
                except InjectedCrash:
                    outcomes.append("crash")
                except AbortedResponse as exc:
                    outcomes.append(f"abort:{exc.cut}")
            return outcomes

        first = drive(ChaosDispatch(_echo, plan, sleep=lambda s: None))
        second = drive(ChaosDispatch(_echo, plan, sleep=lambda s: None))
        assert first == second
        assert "crash" in first
        assert any(outcome.startswith("abort") for outcome in first)

    def test_different_seeds_differ(self):
        def drive(seed):
            plan = ServingFaultPlan(
                seed=seed, default=ServingFaultSpec(crash=0.5)
            )
            chaos = ChaosDispatch(_echo, plan, sleep=lambda s: None)
            outcomes = []
            for i in range(100):
                try:
                    chaos(f"/req/{i}", {})
                    outcomes.append(True)
                except InjectedCrash:
                    outcomes.append(False)
            return outcomes

        assert drive(1) != drive(2)

    def test_stall_spends_time_but_not_correctness(self):
        slept = []
        plan = ServingFaultPlan(
            seed=0,
            default=ServingFaultSpec(stall=1.0, stall_range=(0.01, 0.02)),
        )
        chaos = ChaosDispatch(_echo, plan, sleep=slept.append)
        payload = chaos("/req", {"a": "1"})
        assert payload == {"path": "/req", "params": {"a": "1"}}
        assert len(slept) == 1
        assert 0.01 <= slept[0] <= 0.02

    def test_abort_carries_the_real_body_prefix(self):
        plan = ServingFaultPlan(seed=3, default=ServingFaultSpec(abort=1.0))
        chaos = ChaosDispatch(_echo, plan)
        with pytest.raises(AbortedResponse) as excinfo:
            chaos("/req", {})
        exc = excinfo.value
        assert exc.body == json.dumps(_echo("/req", {})).encode("utf-8")
        assert 1 <= exc.cut < len(exc.body)

    def test_probes_are_exempt(self):
        plan = ServingFaultPlan(seed=0, default=ServingFaultSpec(crash=1.0))
        chaos = ChaosDispatch(_echo, plan)
        for path in ("/healthz", "/readyz", "/metrics"):
            assert chaos(path, {})["path"] == path
        assert chaos.fault_counts["crash"] == 0
        with pytest.raises(InjectedCrash):
            chaos("/data", {})

    def test_burst_turns_one_fault_into_an_outage(self):
        plan = ServingFaultPlan(
            seed=5, default=ServingFaultSpec(crash=0.05, burst=4)
        )
        chaos = ChaosDispatch(_echo, plan)
        crashes = []
        for i in range(300):
            try:
                chaos(f"/req/{i}", {})
                crashes.append(False)
            except InjectedCrash:
                crashes.append(True)
        # Each triggered fault is followed by 3 more: runs of exactly 4.
        runs, current = [], 0
        for crashed in crashes + [False]:
            if crashed:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert runs
        assert all(run % 4 == 0 for run in runs)

    def test_injected_faults_are_counted(self):
        obs = Obs()
        plan = ServingFaultPlan(seed=0, default=ServingFaultSpec(crash=1.0))
        chaos = ChaosDispatch(_echo, plan, obs=obs)
        for i in range(3):
            with pytest.raises(InjectedCrash):
                chaos(f"/req/{i}", {})
        counter = obs.counter("serving_injected_faults", labelnames=("kind",))
        assert counter.value(kind="crash") == 3
        assert chaos.total_injected == 3


class TestChaosOverHttp:
    def test_abort_surfaces_as_incomplete_read(self, serving_store):
        plan = ServingFaultPlan(seed=2, default=ServingFaultSpec(abort=1.0))
        obs = Obs()
        service = ChaosAnalyticsService(serving_store, plan, obs=obs)
        with serve_analytics(service, obs=obs) as server:
            host, port = server.server.server_address[:2]
            conn = http.client.HTTPConnection(host, port, timeout=10)
            try:
                conn.request("GET", "/tailfit/friends")
                response = conn.getresponse()
                assert response.status == 200
                with pytest.raises(http.client.IncompleteRead):
                    response.read()
            finally:
                conn.close()
            assert obs.counter("http_aborted_bodies").value() == 1
            # Telemetry must not book the abort as a clean 200: it is
            # accounted under the 499 sentinel.  The handler accounts
            # after writing the partial body, so poll briefly.
            requests = obs.counter(
                "http_requests", labelnames=("path", "status")
            )
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if requests.value(path="/tailfit/<attr>", status=499) == 1:
                    break
                time.sleep(0.02)
            assert requests.value(path="/tailfit/<attr>", status=499) == 1
            assert requests.value(path="/tailfit/<attr>", status=200) == 0

    def test_crash_is_contained_as_opaque_500(self, serving_store):
        plan = ServingFaultPlan(seed=2, default=ServingFaultSpec(crash=1.0))
        obs = Obs()
        service = ChaosAnalyticsService(serving_store, plan, obs=obs)
        with serve_analytics(service, obs=obs) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    server.base_url + "/tailfit/friends", timeout=10
                )
            assert excinfo.value.code == 500
            assert json.loads(excinfo.value.read()) == {
                "error": "InternalError"
            }
            # The crash released its admission slot and the breaker
            # only counts deadline blowouts: probes and later data
            # requests keep working.
            with urllib.request.urlopen(
                server.base_url + "/healthz", timeout=10
            ) as response:
                assert response.status == 200
            assert service.admission.inflight == 0

    def test_stalls_blow_deadlines_into_504(self, serving_store):
        """A stalled handler with an exhausted budget dies with the
        typed 504 at the next layer boundary — and consecutive
        blowouts trip the route's breaker into fast 429s."""
        plan = ServingFaultPlan(
            seed=4,
            default=ServingFaultSpec(stall=1.0, stall_range=(0.05, 0.06)),
        )
        service = ChaosAnalyticsService(
            serving_store,
            plan,
            admission=AdmissionConfig(
                max_inflight=8,
                breaker_threshold=3,
                breaker_cooldown=30.0,
            ),
        )
        with serve_analytics(service) as server:
            statuses = []
            for _ in range(6):
                request = urllib.request.Request(
                    server.base_url + "/tailfit/friends",
                    headers={DEADLINE_HEADER: "0.01"},
                )
                try:
                    urllib.request.urlopen(request, timeout=10).read()
                    statuses.append(200)
                except urllib.error.HTTPError as exc:
                    statuses.append(exc.code)
                    exc.read()
            assert statuses[:3] == [504, 504, 504]
            # Breaker tripped: subsequent requests shed without the
            # stall (429 + Retry-After covering the cooldown).
            assert statuses[3:] == [429, 429, 429]
            assert service.admission.breaker_states() == {
                "/tailfit/<attr>": "open"
            }


class TestStormAcceptance:
    """The headline guarantee, end to end over real sockets."""

    @pytest.fixture()
    def reference_bodies(self, serving_store, storm_paths):
        """Unloaded run: the byte-exact 200 body for every storm path."""
        service = AnalyticsService(serving_store)
        with serve_analytics(service) as server:
            host, port = server.server.server_address[:2]
            bodies = {}
            conn = http.client.HTTPConnection(host, port, timeout=10)
            try:
                for path in storm_paths:
                    conn.request("GET", path)
                    response = conn.getresponse()
                    assert response.status == 200
                    bodies[path] = response.read()
            finally:
                conn.close()
        return bodies

    def test_storm_sheds_cleanly_and_accepted_bytes_match(
        self, serving_store, reference_bodies, storm_paths
    ):
        obs = Obs()
        # Stall every admitted request a few ms so the 8-client storm
        # genuinely overruns the 2-slot budget: the stall happens
        # *inside* admission, holding the slot like a slow store scan.
        plan = ServingFaultPlan(
            seed=6,
            default=ServingFaultSpec(stall=1.0, stall_range=(0.003, 0.006)),
        )
        service = ChaosAnalyticsService(
            serving_store,
            plan,
            obs=obs,
            admission=AdmissionConfig(
                max_inflight=2, seed=42, breaker_threshold=0
            ),
        )
        with serve_analytics(service, obs=obs) as server:
            host, port = server.server.server_address[:2]
            result = run_storm(
                host,
                port,
                storm_paths,
                clients=8,
                requests_per_client=20,
                seed=9,
            )
        # Zero resource-exhaustion 5xx: every request either served or
        # was shed with a retryable 429.
        assert set(result.status_counts) <= {200, 429}
        assert result.transport_errors == {}
        assert result.count(200) > 0
        assert result.count(429) > 0
        assert result.total == 8 * 20
        # Every shed carried a positive Retry-After hint.
        assert len(result.retry_after) == result.count(429)
        assert all(hint > 0 for hint in result.retry_after)
        # Accepted responses are byte-identical to the unloaded run.
        assert result.accepted
        for path, body in result.accepted:
            assert body == reference_bodies[path], path

    def test_probes_answer_during_the_storm(self, serving_store, storm_paths):
        plan = ServingFaultPlan(
            seed=1,
            default=ServingFaultSpec(stall=1.0, stall_range=(0.01, 0.02)),
        )
        service = ChaosAnalyticsService(
            serving_store,
            plan,
            admission=AdmissionConfig(max_inflight=1, breaker_threshold=0),
        )
        with serve_analytics(service) as server:
            host, port = server.server.server_address[:2]
            stop = threading.Event()

            def storm():
                while not stop.is_set():
                    run_storm(
                        host, port, storm_paths, clients=4, requests_per_client=5
                    )

            storm_thread = threading.Thread(target=storm, daemon=True)
            storm_thread.start()
            try:
                # Liveness and readiness stay green throughout: probes
                # bypass admission and are exempt from chaos.
                for _ in range(10):
                    for probe in ("/healthz", "/readyz"):
                        with urllib.request.urlopen(
                            server.base_url + probe, timeout=10
                        ) as response:
                            assert response.status == 200
            finally:
                stop.set()
                storm_thread.join(timeout=30)

    def test_storm_is_deterministic_under_a_fixed_seed(
        self, serving_store, storm_paths
    ):
        """Same seeds, same store → the same accepted bodies, and
        every Retry-After hint drawn from the seeded jitter sequence
        (the shed *count* depends on thread timing; the payloads and
        the hint values must not)."""

        def once():
            plan = ServingFaultPlan(
                seed=3,
                default=ServingFaultSpec(
                    stall=1.0, stall_range=(0.002, 0.004)
                ),
            )
            service = ChaosAnalyticsService(
                serving_store,
                plan,
                admission=AdmissionConfig(
                    max_inflight=2, seed=7, breaker_threshold=0
                ),
            )
            with serve_analytics(service) as server:
                host, port = server.server.server_address[:2]
                return run_storm(
                    host,
                    port,
                    storm_paths,
                    clients=4,
                    requests_per_client=10,
                    seed=5,
                )

        first, second = once(), once()
        # Accepted bodies are a function of (store, path) alone.
        assert dict(first.accepted) == dict(second.accepted)
        # Hints replay the seeded jitter stream: every observed value
        # appears in the sequence random.Random(7) produces (headers
        # round to 3 decimals, so compare at that precision).
        lo, hi = AdmissionConfig().retry_after
        rng = random.Random(7)
        expected = {
            round(rng.uniform(lo, hi), 3) for _ in range(4 * 10 * 2)
        }
        for result in (first, second):
            assert result.retry_after  # the storm did shed
            assert all(hint in expected for hint in result.retry_after)

"""Serving-tier fixtures: a shared store over the small world, plus a
hand-built tiny-dataset factory for edge-case populations.

``WorldConfig`` refuses worlds under 1000 users (percentile calibration
is meaningless there), so the empty/single-user regression datasets are
assembled directly from the table dataclasses.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import AnalyticsService, AnalyticsStore
from repro.store.dataset import SteamDataset
from repro.store.tables import (
    AccountTable,
    CatalogTable,
    CSRMatrix,
    FriendTable,
    GroupTable,
    LibraryTable,
)


def make_tiny_dataset(
    n_users: int,
    owned: tuple[tuple[int, int, int], ...] = (),
    friends: tuple[tuple[int, int], ...] = (),
) -> SteamDataset:
    """A structurally valid dataset of any size, including zero users.

    ``owned`` is per-user ``(product_index, total_min, twoweek_min)``
    entries in user order; ``friends`` is canonicalized ``(u, v)``
    pairs.
    """
    accounts = AccountTable(
        id_offset=np.arange(n_users, dtype=np.int64),
        created_day=np.zeros(n_users, dtype=np.int64),
        country=np.full(n_users, -1, dtype=np.int64),
        city=np.full(n_users, -1, dtype=np.int64),
        country_names=(),
    )
    if friends:
        u = np.array([p[0] for p in friends], dtype=np.int64)
        v = np.array([p[1] for p in friends], dtype=np.int64)
    else:
        u = v = np.empty(0, dtype=np.int64)
    friend_table = FriendTable(
        u=u, v=v, day=np.zeros(len(u), dtype=np.int64), n_users=n_users
    )
    groups = GroupTable(
        group_type=np.empty(0, dtype=np.int64),
        focus_game=np.empty(0, dtype=np.int64),
        members=CSRMatrix(
            indptr=np.zeros(1, dtype=np.int64),
            indices=np.empty(0, dtype=np.int64),
        ),
        n_users=n_users,
    )
    n_products = 2
    catalog = CatalogTable(
        appid=np.array([10, 20], dtype=np.int64),
        is_game=np.ones(n_products, dtype=bool),
        primary_genre=np.zeros(n_products, dtype=np.int64),
        genre_mask=np.ones(n_products, dtype=np.int64),
        price_cents=np.array([0, 499], dtype=np.int64),
        multiplayer=np.zeros(n_products, dtype=bool),
        release_day=np.zeros(n_products, dtype=np.int64),
        metacritic=np.full(n_products, -1, dtype=np.int64),
        genre_names=("Action",),
    )
    entries_per_user = [[] for _ in range(n_users)]
    for user, entry in enumerate(owned):
        entries_per_user[user].append(entry)
    indptr = [0]
    indices, total, twoweek = [], [], []
    for per_user in entries_per_user:
        for product, total_min, twoweek_min in per_user:
            indices.append(product)
            total.append(total_min)
            twoweek.append(twoweek_min)
        indptr.append(len(indices))
    library = LibraryTable(
        owned=CSRMatrix(
            indptr=np.array(indptr, dtype=np.int64),
            indices=np.array(indices, dtype=np.int64),
        ),
        total_min=np.array(total, dtype=np.int64),
        twoweek_min=np.array(twoweek, dtype=np.int64),
    )
    return SteamDataset(
        accounts=accounts,
        friends=friend_table,
        groups=groups,
        catalog=catalog,
        library=library,
    )


@pytest.fixture(scope="session")
def storm_paths(small_dataset):
    """A request mix covering every cacheable route family."""
    steamids = small_dataset.accounts.steamids()
    return [
        f"/users/{int(steamids[0])}/summary",
        f"/users/{int(steamids[1])}/neighborhood?limit=10",
        "/distributions/friends/percentile?q=50",
        "/distributions/owned_games/rank?value=10",
        "/tailfit/friends",
        "/homophily/owned_games",
    ]


@pytest.fixture(scope="session")
def serving_store(small_dataset) -> AnalyticsStore:
    """One store over the shared 5k world; fits capped for speed."""
    return AnalyticsStore.build(small_dataset, max_tail=4_000)


@pytest.fixture()
def serving_service(serving_store) -> AnalyticsService:
    """Fresh service (and response cache) per test."""
    return AnalyticsService(serving_store)

"""Store swaps under concurrent read load: stale-while-swap semantics.

A swap must never block readers, never serve a torn store/cache pair
(a payload from one store under the other's cache key), and never drop
a keep-alive connection.  During the swap window responses carry
``"degraded": true`` and ``/readyz`` answers 503 while ``/healthz``
stays green.
"""

from __future__ import annotations

import http.client
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.constants import STEAMID_BASE
from repro.serving import AnalyticsService, AnalyticsStore, serve_analytics
from repro.steamapi.errors import ServiceUnavailableError

from .conftest import make_tiny_dataset


@pytest.fixture(scope="module")
def store_pair():
    """Two tiny stores with observably different playtime columns."""
    ds_a = make_tiny_dataset(
        3, owned=((0, 600, 60), (1, 1200, 0), (0, 60, 60))
    )
    ds_b = make_tiny_dataset(
        3, owned=((0, 6000, 600), (1, 12000, 0), (0, 600, 600))
    )
    return (
        AnalyticsStore.build(ds_a, max_tail=2_000),
        AnalyticsStore.build(ds_b, max_tail=2_000),
    )


class TestDegradedWindow:
    def test_degraded_flag_decorates_responses_inside_the_window(
        self, store_pair
    ):
        store_a, _ = store_pair
        service = AnalyticsService(store_a)
        path = f"/users/{STEAMID_BASE}/summary"
        clean = service.dispatch(path, {})
        assert "degraded" not in clean
        with service.degraded_mode():
            assert service.degraded
            degraded = service.dispatch(path, {})
            assert degraded["degraded"] is True
            assert {k: v for k, v in degraded.items() if k != "degraded"} == (
                clean
            )
        # The cached body was never mutated: out of the window the
        # same (cache-hit) payload comes back flag-free.
        after = service.dispatch(path, {})
        assert after == clean

    def test_readyz_is_503_inside_the_window_healthz_stays_green(
        self, store_pair
    ):
        store_a, _ = store_pair
        service = AnalyticsService(store_a)
        assert service.dispatch("/readyz", {})["status"] == "ready"
        with service.degraded_mode():
            assert service.dispatch("/healthz", {})["status"] == "ok"
            assert service.dispatch("/healthz", {})["degraded"] is True
            with pytest.raises(ServiceUnavailableError):
                service.dispatch("/readyz", {})
        payload = service.dispatch("/readyz", {})
        assert payload["status"] == "ready"
        assert payload["degraded"] is False

    def test_windows_nest(self, store_pair):
        store_a, _ = store_pair
        service = AnalyticsService(store_a)
        with service.degraded_mode():
            with service.degraded_mode():
                assert service.degraded
            assert service.degraded  # outer window still open
        assert not service.degraded


class TestSwapUnderLoad:
    def test_no_torn_store_cache_pair(self, store_pair):
        """Concurrent readers during repeated swaps must only ever see
        one of the two stores' exact payloads — never a mixture — and
        cache hits must respect the fingerprint keying."""
        store_a, store_b = store_pair
        service = AnalyticsService(store_a)
        path = f"/users/{STEAMID_BASE + 1}/summary"
        expected_a = AnalyticsService(store_a).dispatch(path, {})
        expected_b = AnalyticsService(store_b).dispatch(path, {})
        assert expected_a != expected_b  # the stores are distinguishable

        stop = threading.Event()
        bad: list[dict] = []

        def reader():
            while not stop.is_set():
                payload = service.dispatch(path, {})
                payload = {
                    k: v for k, v in payload.items() if k != "degraded"
                }
                if payload not in (expected_a, expected_b):
                    bad.append(payload)
                    return

        readers = [
            threading.Thread(target=reader, daemon=True) for _ in range(4)
        ]
        for thread in readers:
            thread.start()
        for _ in range(25):
            service.swap_store(store_b)
            service.swap_store(store_a)
        stop.set()
        for thread in readers:
            thread.join(timeout=30)
        assert bad == []
        # Settled on store A: fresh reads serve its exact payload.
        assert service.dispatch(path, {}) == expected_a

    def test_keepalive_connection_survives_a_swap(self, store_pair):
        store_a, store_b = store_pair
        service = AnalyticsService(store_a)
        with serve_analytics(service) as server:
            host, port = server.server.server_address[:2]
            conn = http.client.HTTPConnection(host, port, timeout=10)
            try:
                conn.request("GET", f"/users/{STEAMID_BASE + 1}/summary")
                response = conn.getresponse()
                assert response.status == 200
                before = json.loads(response.read())
                assert response.getheader("Connection") != "close"

                service.swap_store(store_b)

                # Same HTTP/1.1 connection, no reconnect: the swap
                # must not tear down keep-alive sockets.
                conn.request("GET", f"/users/{STEAMID_BASE + 1}/summary")
                response = conn.getresponse()
                assert response.status == 200
                after = json.loads(response.read())
            finally:
                conn.close()
        assert before != after  # the new store is live
        fingerprint = service.store.fingerprint
        assert fingerprint == store_b.fingerprint

    def test_probes_over_http_during_swap_window(self, store_pair):
        store_a, _ = store_pair
        service = AnalyticsService(store_a)
        with serve_analytics(service) as server:
            with service.degraded_mode():
                with urllib.request.urlopen(
                    server.base_url + "/healthz", timeout=10
                ) as response:
                    assert response.status == 200
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(
                        server.base_url + "/readyz", timeout=10
                    )
                assert excinfo.value.code == 503
            with urllib.request.urlopen(
                server.base_url + "/readyz", timeout=10
            ) as response:
                assert json.loads(response.read())["status"] == "ready"

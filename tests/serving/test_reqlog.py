"""Request-level observability on the serving tier, end to end.

The acceptance bar (DESIGN.md §15): every data request dispatched —
success, cache hit, 4xx, shed 429, blown-deadline 504, contained crash
500, aborted-body 499 — leaves exactly one canonical record whose
status matches the wire; injected stalls are attributed to the correct
layer; the ``/debug/*`` introspection endpoints answer while admission
is saturated; the record ring stays bounded under a storm; and
same-seed serial runs produce byte-identical record streams under
``FakeClock``.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.obs import Obs
from repro.obs.clock import FakeClock
from repro.obs.reqlog import LAYERS, RequestLog, encode_record
from repro.obs.slo import SLOSpec, SLOTracker
from repro.serving import (
    AdmissionConfig,
    AnalyticsService,
    ChaosAnalyticsService,
    ServingFaultPlan,
    ServingFaultSpec,
    serve_analytics,
)
from repro.serving.chaos import InjectedCrash, run_storm
from repro.steamapi.deadline import Deadline, deadline_scope
from repro.steamapi.errors import (
    BadRequestError,
    DeadlineExceededError,
    NotFoundError,
    OverloadedError,
)
from repro.steamapi.faults import AbortedResponse


def _logged_service(store, **kwargs) -> AnalyticsService:
    clock = kwargs.pop("clock", None) or FakeClock(tick=0.001)
    log = RequestLog(clock=clock)
    slo = SLOTracker(
        [SLOSpec(route="*", target=0.999, latency_threshold_s=60.0)],
        clock=clock,
    )
    return AnalyticsService(store, request_log=log, slo=slo, **kwargs)


class TestDispatchRecords:
    """One canonical record per data dispatch, on every exit path."""

    def test_success_records_cache_miss_then_hit(self, serving_store):
        service = _logged_service(serving_store)
        service.dispatch("/tailfit/friends", {})
        service.dispatch("/tailfit/friends", {})
        miss, hit = service.request_log.records()
        for record in (miss, hit):
            assert record["status"] == 200
            assert record["route"] == "/tailfit/<attr>"
            assert record["path"] == "/tailfit/friends"
            assert record["admission"] == "admitted"
            assert set(record["layers"]) == set(LAYERS)
        assert miss["cache"] == "miss"
        assert miss["layers"]["store"] > 0.0
        assert hit["cache"] == "hit"
        assert hit["layers"]["store"] == 0.0  # never reached the store

    def test_client_errors_record_wire_matching_statuses(
        self, serving_store
    ):
        service = _logged_service(serving_store)
        with pytest.raises(NotFoundError):
            service.dispatch("/no/such/route", {})
        with pytest.raises(BadRequestError):
            service.dispatch(
                "/distributions/friends/percentile", {}
            )  # missing q
        with pytest.raises(NotFoundError):
            service.dispatch("/tailfit/not_an_attribute", {})
        records = service.request_log.records()
        assert [r["status"] for r in records] == [404, 400, 404]
        assert records[0]["route"] == "<unmatched>"
        assert records[1]["route"] == "/distributions/<attr>/percentile"

    def test_shed_records_429_with_admission_reason(self, serving_store):
        service = _logged_service(
            serving_store,
            admission=AdmissionConfig(max_inflight=1, breaker_threshold=0),
        )
        with service.admission.admit("/elsewhere"):
            with pytest.raises(OverloadedError):
                service.dispatch("/tailfit/friends", {})
        (record,) = service.request_log.records()
        assert record["status"] == 429
        assert record["admission"] == "shed:capacity"
        assert record["breaker"] == "closed"

    def test_blown_deadline_records_504_and_remaining_budget(
        self, serving_store
    ):
        service = _logged_service(serving_store)
        expired = Deadline.after(0.0)
        with deadline_scope(expired):
            with pytest.raises(DeadlineExceededError):
                service.dispatch("/tailfit/friends", {})
        (record,) = service.request_log.records()
        assert record["status"] == 504
        assert record["deadline_remaining_s"] <= 0.0

    def test_injected_crash_and_abort_record_fault_kinds(
        self, serving_store
    ):
        clock = FakeClock(tick=0.001)
        crash_service = ChaosAnalyticsService(
            serving_store,
            ServingFaultPlan(seed=0, default=ServingFaultSpec(crash=1.0)),
            request_log=RequestLog(clock=clock),
        )
        with pytest.raises(InjectedCrash):
            crash_service.dispatch("/tailfit/friends", {})
        (record,) = crash_service.request_log.records()
        assert record["status"] == 500
        assert record["fault"] == "crash"

        abort_service = ChaosAnalyticsService(
            serving_store,
            ServingFaultPlan(seed=0, default=ServingFaultSpec(abort=1.0)),
            request_log=RequestLog(clock=FakeClock(tick=0.001)),
        )
        with pytest.raises(AbortedResponse):
            abort_service.dispatch("/tailfit/friends", {})
        (record,) = abort_service.request_log.records()
        assert record["status"] == 499  # telemetry sentinel, not a 200
        assert record["fault"] == "abort"

    def test_stall_is_attributed_to_the_handler_layer(self, serving_store):
        # The chaos stall sleeps inside the handler layer but outside
        # the cache/store layers — exactly where a slow scan would
        # live.  On a FakeClock the attribution is exact: the handler's
        # exclusive time (minus cache and store) is the stall.
        clock = FakeClock()
        service = ChaosAnalyticsService(
            serving_store,
            ServingFaultPlan(
                seed=1,
                default=ServingFaultSpec(stall=1.0, stall_range=(0.05, 0.05)),
            ),
            sleep=clock.advance,
            request_log=RequestLog(clock=clock),
        )
        service.dispatch("/tailfit/friends", {})
        (record,) = service.request_log.records()
        layers = record["layers"]
        exclusive = layers["handler"] - layers["cache"] - layers["store"]
        assert exclusive == pytest.approx(0.05)

    def test_probes_and_debug_routes_are_not_recorded(self, serving_store):
        service = _logged_service(serving_store)
        service.dispatch("/healthz", {})
        service.dispatch("/readyz", {})
        service.dispatch("/debug/requests", {})
        service.dispatch("/debug/slo", {})
        assert service.request_log.stats()["total"] == 0
        assert service.slo.snapshot()["routes"] == {}

    def test_slo_feeds_on_every_data_exit(self, serving_store):
        service = _logged_service(serving_store)
        service.dispatch("/tailfit/friends", {})
        with pytest.raises(NotFoundError):
            service.dispatch("/no/such/route", {})  # 404: not our badness
        expired = Deadline.after(0.0)
        with deadline_scope(expired):
            with pytest.raises(DeadlineExceededError):
                service.dispatch("/homophily/friends", {})
        routes = service.slo.snapshot()["routes"]
        assert routes["/tailfit/<attr>"]["good"] == 1
        assert routes["<unmatched>"]["good"] == 1  # 404 is good
        assert routes["/homophily/<attr>"]["bad"] == 1  # 504 is bad


class TestDebugEndpoints:
    """Introspection must answer *during* the incident it explains."""

    def test_debug_requests_bypasses_saturated_admission(
        self, serving_store
    ):
        clock = FakeClock(tick=0.001)
        service = AnalyticsService(
            serving_store,
            request_log=RequestLog(clock=clock),
            slo=SLOTracker([SLOSpec(route="*")], clock=clock),
            admission=AdmissionConfig(max_inflight=1, breaker_threshold=0),
        )
        with serve_analytics(service) as server:
            # Hold the only in-flight slot: every data request sheds.
            with service.admission.admit("/held"):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(
                        server.base_url + "/tailfit/friends", timeout=10
                    )
                assert excinfo.value.code == 429
                excinfo.value.read()
                # The handler commits the record *after* writing the
                # response, on the server thread — poll briefly, via
                # the debug endpoint itself (which must keep answering
                # while the slot is held).
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    with urllib.request.urlopen(
                        server.base_url + "/debug/requests?n=10&status=429",
                        timeout=10,
                    ) as response:
                        assert response.status == 200
                        payload = json.loads(response.read())
                    if payload["requests"]:
                        break
                    time.sleep(0.02)
                with urllib.request.urlopen(
                    server.base_url + "/debug/slo", timeout=10
                ) as response:
                    assert response.status == 200
                    slo_payload = json.loads(response.read())
        (shed,) = payload["requests"]
        assert shed["status"] == 429
        assert shed["admission"] == "shed:capacity"
        assert shed["trace_id"] != ""
        assert payload["stats"]["total"] == 1
        assert slo_payload["routes"]["/tailfit/<attr>"]["bad"] == 1

    def test_debug_endpoints_404_when_observability_is_off(
        self, serving_service
    ):
        with pytest.raises(NotFoundError):
            serving_service.dispatch("/debug/requests", {})
        with pytest.raises(NotFoundError):
            serving_service.dispatch("/debug/slo", {})

    def test_debug_requests_filters_and_caps(self, serving_store):
        service = _logged_service(serving_store)
        for _ in range(3):
            service.dispatch("/tailfit/friends", {})
        with pytest.raises(NotFoundError):
            service.dispatch("/missing", {})
        payload = service.dispatch("/debug/requests", {"n": "2"})
        assert len(payload["requests"]) == 2
        payload = service.dispatch("/debug/requests", {"status": "404"})
        assert [r["route"] for r in payload["requests"]] == ["<unmatched>"]
        payload = service.dispatch(
            "/debug/requests", {"route": "/tailfit/<attr>", "n": "10"}
        )
        assert len(payload["requests"]) == 3


class TestStormRecords:
    """The headline guarantee over real sockets: record counts match
    the wire exactly, under chaos."""

    def test_every_storm_request_has_exactly_one_matching_record(
        self, serving_store, storm_paths
    ):
        obs = Obs()
        log = RequestLog(capacity=4096, clock=obs.clock)
        slo = SLOTracker([SLOSpec(route="*")], clock=obs.clock)
        plan = ServingFaultPlan(
            seed=6,
            default=ServingFaultSpec(
                stall=0.2, abort=0.2, crash=0.2, stall_range=(0.001, 0.003)
            ),
        )
        service = ChaosAnalyticsService(
            serving_store,
            plan,
            obs=obs,
            request_log=log,
            slo=slo,
            admission=AdmissionConfig(
                max_inflight=2, seed=42, breaker_threshold=0
            ),
        )
        with serve_analytics(service, obs=obs) as server:
            host, port = server.server.server_address[:2]
            result = run_storm(
                host,
                port,
                storm_paths,
                clients=6,
                requests_per_client=15,
                seed=9,
            )
        # The server has drained: every handler committed its record.
        records = log.records()
        assert len(records) == result.total == 6 * 15
        by_status: dict[int, int] = {}
        for record in records:
            by_status[record["status"]] = (
                by_status.get(record["status"], 0) + 1
            )
        # Clean statuses match the wire one for one.
        for status, count in result.status_counts.items():
            assert by_status.pop(status) == count, status
        # Aborts reach the client as transport errors (IncompleteRead);
        # the server books each one under the 499 sentinel.
        aborts = sum(result.transport_errors.values())
        assert by_status.pop(499, 0) == aborts
        assert by_status == {}  # nothing the wire didn't see
        # Chaos outcomes carry their fault kind; wire facts landed.
        assert any(r["fault"] == "abort" for r in records) == (aborts > 0)
        for record in records:
            if record["status"] == 200:
                assert record["bytes_out"] > 0
            assert record["trace_id"] != ""
        # SLO accounting saw every dispatch the log saw.
        routes = slo.snapshot()["routes"]
        assert sum(e["good"] + e["bad"] for e in routes.values()) == len(
            records
        )

    def test_ring_stays_bounded_under_the_storm(
        self, serving_store, storm_paths
    ):
        log = RequestLog(capacity=8)
        service = AnalyticsService(serving_store, request_log=log)
        with serve_analytics(service) as server:
            host, port = server.server.server_address[:2]
            result = run_storm(
                host, port, storm_paths, clients=4, requests_per_client=10
            )
        stats = log.stats()
        assert stats["capacity"] == 8
        assert stats["size"] == 8
        assert stats["total"] == result.total == 4 * 10
        assert stats["dropped"] == stats["total"] - 8
        assert len(log.records()) == 8

    def test_burn_alerts_fire_under_storm_and_stay_silent_clean(
        self, serving_store, storm_paths
    ):
        def storm(plan: ServingFaultPlan | None) -> SLOTracker:
            slo = SLOTracker([SLOSpec(route="*", latency_threshold_s=60.0)])
            if plan is None:
                service = AnalyticsService(serving_store, slo=slo)
            else:
                service = ChaosAnalyticsService(
                    serving_store, plan, slo=slo
                )
            with serve_analytics(service) as server:
                host, port = server.server.server_address[:2]
                run_storm(
                    host,
                    port,
                    storm_paths,
                    clients=4,
                    requests_per_client=10,
                    seed=3,
                )
            return slo

        chaotic = storm(
            ServingFaultPlan(seed=2, default=ServingFaultSpec(crash=0.5))
        )
        alerts = chaotic.evaluate()
        assert any(a.firing for a in alerts)
        assert any(
            window == "page" for (_, window) in chaotic.alert_fires
        )

        clean = storm(None)
        assert not any(a.firing for a in clean.evaluate())
        assert clean.alert_fires == {}

    def test_same_seed_serial_runs_are_byte_identical(self, serving_store):
        """The determinism contract: a fixed request sequence against a
        seeded chaos plan on a FakeClock encodes to the same bytes,
        run after run."""
        paths = [
            "/tailfit/friends",
            "/homophily/owned_games",
            "/distributions/friends/percentile",  # 400: missing q
            "/no/such/route",  # 404
            "/tailfit/friends",  # cache hit
        ] * 4

        def run() -> bytes:
            clock = FakeClock(tick=0.0005)
            log = RequestLog(clock=clock)
            service = ChaosAnalyticsService(
                serving_store,
                ServingFaultPlan(
                    seed=7,
                    default=ServingFaultSpec(
                        stall=0.3,
                        abort=0.2,
                        crash=0.2,
                        stall_range=(0.01, 0.02),
                    ),
                ),
                sleep=clock.advance,
                request_log=log,
                slo=SLOTracker([SLOSpec(route="*")], clock=clock),
            )
            for path in paths:
                try:
                    service.dispatch(path, {})
                except (
                    InjectedCrash,
                    AbortedResponse,
                    NotFoundError,
                    BadRequestError,
                ):
                    pass
            return b"\n".join(
                encode_record(record) for record in log.records()
            )

        first, second = run(), run()
        assert first == second
        assert len(first.splitlines()) == len(paths)

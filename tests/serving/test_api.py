"""AnalyticsService routing, parameter validation, response caching,
and the HTTP integration on top of ``serve_dispatch``."""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.obs import Obs
from repro.obs.clock import FakeClock
from repro.serving import AnalyticsService, serve_analytics
from repro.serving.admission import AdmissionConfig, AdmissionController
from repro.steamapi.errors import BadRequestError, NotFoundError


def _get(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return response.status, json.loads(response.read())


def _get_error(base: str, path: str):
    try:
        urllib.request.urlopen(base + path, timeout=10)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())
    raise AssertionError(f"{path} unexpectedly succeeded")


class TestRouting:
    def test_route_of_collapses_ids(self, serving_service):
        assert (
            serving_service.route_of("/users/76561197960265728/summary")
            == "/users/<id>/summary"
        )
        assert serving_service.route_of("/apps/440/stats") == "/apps/<id>/stats"
        assert (
            serving_service.route_of("/distributions/friends/percentile")
            == "/distributions/<attr>/percentile"
        )
        assert serving_service.route_of("/not/a/route") == "<unmatched>"

    def test_unknown_route_404(self, serving_service):
        with pytest.raises(NotFoundError):
            serving_service.dispatch("/not/a/route", {})

    def test_missing_q_400(self, serving_service):
        with pytest.raises(BadRequestError, match="missing required"):
            serving_service.dispatch(
                "/distributions/friends/percentile", {}
            )

    def test_non_numeric_q_400(self, serving_service):
        with pytest.raises(BadRequestError, match="must be a number"):
            serving_service.dispatch(
                "/distributions/friends/percentile", {"q": "fifty"}
            )

    def test_infinite_q_400(self, serving_service):
        with pytest.raises(BadRequestError, match="finite"):
            serving_service.dispatch(
                "/distributions/friends/percentile", {"q": "inf"}
            )

    def test_non_integer_limit_400(self, serving_service, small_dataset):
        steamid = int(small_dataset.accounts.steamids()[0])
        with pytest.raises(BadRequestError, match="integer"):
            serving_service.dispatch(
                f"/users/{steamid}/neighborhood", {"limit": "many"}
            )


class TestResponseCache:
    def test_repeat_query_hits_cache(self, serving_service):
        path = "/distributions/friends/percentile"
        first = serving_service.dispatch(path, {"q": "90"})
        second = serving_service.dispatch(path, {"q": "90"})
        assert first == second
        stats = serving_service.cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_distinct_params_are_distinct_entries(self, serving_service):
        path = "/distributions/friends/percentile"
        serving_service.dispatch(path, {"q": "10"})
        serving_service.dispatch(path, {"q": "20"})
        assert serving_service.cache.stats()["misses"] == 2

    def test_healthz_is_never_cached(self, serving_service):
        serving_service.dispatch("/healthz", {})
        serving_service.dispatch("/healthz", {})
        stats = serving_service.cache.stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 0

    def test_healthz_reports_cache_stats(self, serving_service):
        serving_service.dispatch(
            "/distributions/friends/percentile", {"q": "50"}
        )
        payload = serving_service.dispatch("/healthz", {})
        assert payload["cache"]["misses"] == 1


class TestBreakerRecovery:
    def test_failed_probe_does_not_wedge_the_route(
        self, serving_store, small_dataset
    ):
        """Regression: after a breaker trip, a half-open probe that
        404s must release the probe slot — one bad probe must not turn
        the route into endless breaker 429s."""
        clock = FakeClock()
        admission = AdmissionController(
            AdmissionConfig(breaker_threshold=2, breaker_cooldown=10.0),
            clock=clock,
        )
        service = AnalyticsService(serving_store, admission=admission)
        route = "/users/<id>/summary"
        admission.record_timeout(route)
        admission.record_timeout(route)
        assert admission.breaker_states()[route] == "open"
        clock.advance(10.1)
        # The half-open probe dies on a 404 (unknown steamid).
        steamids = small_dataset.accounts.steamids()
        unknown = int(steamids[-1]) + 1000
        with pytest.raises(NotFoundError):
            service.dispatch(f"/users/{unknown}/summary", {})
        # The route recovers: the next request is admitted as a fresh
        # probe, succeeds, and closes the breaker.
        steamid = int(steamids[0])
        payload = service.dispatch(f"/users/{steamid}/summary", {})
        assert payload["steamid"] == steamid
        assert admission.breaker_states()[route] == "closed"


class TestHttp:
    @pytest.fixture()
    def server(self, serving_store):
        obs = Obs()
        service = AnalyticsService(serving_store, obs=obs)
        server = serve_analytics(service, obs=obs, access_log=False)
        yield server
        server.close()

    def test_summary_roundtrip(self, server, small_dataset):
        steamid = int(small_dataset.accounts.steamids()[0])
        status, payload = _get(server.base_url, f"/users/{steamid}/summary")
        assert status == 200
        assert payload["steamid"] == steamid

    def test_error_statuses(self, server):
        code, body = _get_error(
            server.base_url, "/distributions/friends/percentile?q=101"
        )
        assert code == 400
        assert "in [0, 100]" in body["message"]
        code, body = _get_error(server.base_url, "/distributions/bogus/percentile?q=50")
        assert code == 404
        code, _ = _get_error(server.base_url, "/nope")
        assert code == 404

    def test_metrics_use_route_templates_not_raw_paths(
        self, server, small_dataset
    ):
        steamid = int(small_dataset.accounts.steamids()[0])
        _get(server.base_url, f"/users/{steamid}/summary")
        # The handler accounts a request after sending its response, so
        # an immediate scrape can beat the bookkeeping: poll briefly.
        deadline = time.monotonic() + 5.0
        text = ""
        while time.monotonic() < deadline:
            with urllib.request.urlopen(
                server.base_url + "/metrics", timeout=10
            ) as response:
                text = response.read().decode()
            if 'path="/users/<id>/summary"' in text:
                break
            time.sleep(0.02)
        assert 'path="/users/<id>/summary"' in text
        assert f"/users/{steamid}/summary" not in text
        assert "http_request_seconds" in text

"""Politeness pacing."""

import pytest

from repro.crawler.throttle import PAPER_POLITENESS, PolitePacer


class FakeTime:
    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


class TestPolitePacer:
    def test_politeness_default_is_85_percent(self):
        assert PAPER_POLITENESS == 0.85

    def test_rate_scaled_by_politeness(self):
        pacer = PolitePacer(100.0, politeness=0.85)
        assert pacer.rate == pytest.approx(85.0)

    def test_first_request_free(self):
        fake = FakeTime()
        pacer = PolitePacer(10.0, clock=fake.clock, sleeper=fake.sleep)
        assert pacer.pace() == 0.0
        assert fake.sleeps == []

    def test_back_to_back_requests_sleep(self):
        fake = FakeTime()
        pacer = PolitePacer(
            10.0, politeness=1.0, clock=fake.clock, sleeper=fake.sleep
        )
        pacer.pace()
        waited = pacer.pace()
        assert waited == pytest.approx(0.1)
        assert fake.sleeps == [pytest.approx(0.1)]

    def test_sustained_rate(self):
        fake = FakeTime()
        pacer = PolitePacer(
            100.0, politeness=0.85, clock=fake.clock, sleeper=fake.sleep
        )
        for _ in range(1000):
            pacer.pace()
        # 1000 requests at 85/s take ~11.76 virtual seconds.
        assert fake.now == pytest.approx(1000 / 85.0, rel=0.01)

    def test_no_sleep_when_naturally_slow(self):
        fake = FakeTime()
        pacer = PolitePacer(
            10.0, politeness=1.0, clock=fake.clock, sleeper=fake.sleep
        )
        pacer.pace()
        fake.now += 5.0  # caller was slow on its own
        assert pacer.pace() == 0.0

    def test_stats_accumulate(self):
        fake = FakeTime()
        pacer = PolitePacer(
            10.0, politeness=1.0, clock=fake.clock, sleeper=fake.sleep
        )
        for _ in range(5):
            pacer.pace()
        assert pacer.total_requests == 5
        assert pacer.total_waited == pytest.approx(0.4)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PolitePacer(0.0)
        with pytest.raises(ValueError):
            PolitePacer(10.0, politeness=0.0)
        with pytest.raises(ValueError):
            PolitePacer(10.0, politeness=1.5)

"""Pipelined transport (``CrawlSession.get_many``) equivalence.

The contract: a ``get_many`` window is *sequential-equivalent* to
calling ``get`` once per item — same transport-call order (so a seeded
fault injector fires the same faults), same retry schedule, same
bookkeeping totals — and stops exactly where the lockstep caller would
have stopped on the first escaping error.
"""

import numpy as np
import pytest

from repro import constants
from repro.crawler.retry import RetriesExhausted, RetryPolicy
from repro.crawler.session import CrawlSession
from repro.crawler.throttle import PolitePacer
from repro.obs import Obs
from repro.steamapi.errors import PrivateProfileError
from repro.steamapi.faults import (
    FaultInjectingTransport,
    FaultPlan,
    FaultSpec,
)
from repro.steamapi.service import SteamApiService
from repro.steamapi.transport import InProcessTransport


@pytest.fixture(scope="module")
def service(small_world):
    return SteamApiService.from_world(small_world)


def _session(transport, obs=None, **retry_kwargs):
    return CrawlSession(
        transport=transport,
        pacer=PolitePacer(1e9, sleeper=lambda s: None),
        retry=RetryPolicy(sleeper=lambda s: None, **retry_kwargs),
        obs=obs,
    )


def _detail_items(service, n=40):
    """A mixed-endpoint window over the first ``n`` public accounts."""
    public = np.flatnonzero(~service.private_mask)[:n]
    items = []
    for user in public:
        sid = int(service._offsets[user]) + constants.STEAMID_BASE
        items.append(("/ISteamUser/GetFriendList/v1", {"steamid": sid}))
        items.append(("/IPlayerService/GetOwnedGames/v1", {"steamid": sid}))
        items.append(
            ("/ISteamUser/GetUserGroupList/v1", {"steamid": sid})
        )
    return items


#: Aggressive chaos: every fault kind, 2-long bursts.
PLAN = FaultPlan(
    seed=4242,
    default=FaultSpec(
        rate_limit=0.05,
        server_error=0.05,
        timeout=0.03,
        malformed=0.02,
        retry_after=(0.001, 0.01),
        burst=2,
    ),
)


class TestSequentialEquivalence:
    def test_clean_payloads_match_lockstep(self, service):
        items = _detail_items(service)
        lockstep = _session(InProcessTransport(service))
        expected = [
            lockstep.get(path, **params) for path, params in items
        ]
        pipelined = _session(InProcessTransport(service))
        results, error = pipelined.get_many(
            [(path, dict(params)) for path, params in items]
        )
        assert error is None
        assert results == expected
        assert pipelined.requests_made == lockstep.requests_made
        assert pipelined.attempts == lockstep.attempts

    def test_chaos_payloads_and_fault_sequence_match_lockstep(
        self, service
    ):
        """Same payloads *and* the same injected-fault tape.

        Two identically-seeded injectors replay the same fault
        decisions per transport call — so matching fault counts prove
        the pipelined window issues physical attempts in exactly the
        lockstep order.
        """
        items = _detail_items(service)
        lock_t = FaultInjectingTransport(InProcessTransport(service), PLAN)
        lockstep = _session(lock_t, max_attempts=10, jitter=True)
        expected = [
            lockstep.get(path, **params) for path, params in items
        ]
        pipe_t = FaultInjectingTransport(InProcessTransport(service), PLAN)
        pipelined = _session(pipe_t, max_attempts=10, jitter=True)
        results, error = pipelined.get_many(
            [(path, dict(params)) for path, params in items]
        )
        assert error is None
        assert results == expected
        assert lock_t.fault_counts  # chaos actually happened
        assert pipe_t.fault_counts == lock_t.fault_counts
        assert pipelined.attempts == lockstep.attempts
        assert pipelined.retries == lockstep.retries

    def test_metric_totals_match_lockstep(self, service):
        """Batched counter updates still land on identical totals."""
        items = _detail_items(service)
        obs_lock, obs_pipe = Obs(), Obs()
        lockstep = _session(InProcessTransport(service), obs=obs_lock)
        for path, params in items:
            lockstep.get(path, **params)
        pipelined = _session(InProcessTransport(service), obs=obs_pipe)
        _, error = pipelined.get_many(
            [(path, dict(params)) for path, params in items]
        )
        assert error is None
        for obs in (obs_lock, obs_pipe):
            requests = obs.registry.get("steamapi_requests")
            total = sum(
                s["value"] for s in requests.snapshot()["series"]
            )
            assert total == len(items)
            assert obs.registry.get("steamapi_attempts").value() == len(
                items
            )
            latency = obs.registry.get("steamapi_request_seconds")
            assert (
                sum(s["count"] for s in latency.snapshot()["series"])
                == len(items)
            )


class TestWindowStopsAtFirstError:
    def test_fatal_error_truncates_window(self, small_world):
        service = SteamApiService.from_world(
            small_world, private_rate=0.1, private_seed=5
        )
        private = np.flatnonzero(service.private_mask)
        assert len(private), "private_rate produced no private profiles"
        bad_sid = (
            int(service._offsets[private[0]]) + constants.STEAMID_BASE
        )
        ok_sid = (
            int(
                service._offsets[np.flatnonzero(~service.private_mask)[0]]
            )
            + constants.STEAMID_BASE
        )
        session = _session(InProcessTransport(service))
        results, error = session.get_many(
            [
                ("/IPlayerService/GetOwnedGames/v1", {"steamid": ok_sid}),
                ("/ISteamUser/GetFriendList/v1", {"steamid": bad_sid}),
                # Never issued: the window stops at the failure.
                ("/IPlayerService/GetOwnedGames/v1", {"steamid": ok_sid}),
            ]
        )
        assert isinstance(error, PrivateProfileError)
        assert len(results) == 1
        assert session.requests_made == 2
        assert session.attempts == 2  # fatal errors are not retried

    def test_retries_exhausted_truncates_window(self, service):
        always_down = FaultInjectingTransport(
            InProcessTransport(service),
            FaultPlan(seed=7, default=FaultSpec(server_error=1.0)),
        )
        session = _session(always_down, max_attempts=3)
        ok_sid = (
            int(
                service._offsets[np.flatnonzero(~service.private_mask)[0]]
            )
            + constants.STEAMID_BASE
        )
        results, error = session.get_many(
            [
                ("/IPlayerService/GetOwnedGames/v1", {"steamid": ok_sid}),
                ("/IPlayerService/GetOwnedGames/v1", {"steamid": ok_sid}),
            ]
        )
        assert isinstance(error, RetriesExhausted)
        assert results == []
        assert session.requests_made == 1  # second item never issued
        assert session.attempts == 3

"""Full-crawl equivalence: the crawler must reconstruct the world."""

import numpy as np
import pytest


class TestReconstruction:
    def test_account_space(self, small_dataset, crawled_dataset):
        assert crawled_dataset.n_users == small_dataset.n_users
        assert np.array_equal(
            crawled_dataset.accounts.id_offset,
            small_dataset.accounts.id_offset,
        )

    def test_friendships_exact(self, small_dataset, crawled_dataset):
        assert crawled_dataset.friends.n_edges == small_dataset.friends.n_edges
        assert np.array_equal(
            crawled_dataset.friends.u, small_dataset.friends.u
        )
        assert np.array_equal(
            crawled_dataset.friends.v, small_dataset.friends.v
        )

    def test_friend_days_masked_pre_epoch(
        self, small_dataset, crawled_dataset
    ):
        epoch = small_dataset.meta.friend_ts_epoch_day
        truth = small_dataset.friends.day
        crawled = crawled_dataset.friends.day
        recorded = truth >= epoch
        assert np.array_equal(crawled[recorded], truth[recorded])
        assert np.all(crawled[~recorded] == -1)

    def test_libraries_exact(self, small_dataset, crawled_dataset):
        assert np.array_equal(
            crawled_dataset.owned_counts(), small_dataset.owned_counts()
        )
        assert (
            crawled_dataset.library.user_total_min().sum()
            == small_dataset.library.user_total_min().sum()
        )
        assert np.array_equal(
            crawled_dataset.library.user_twoweek_min(),
            small_dataset.library.user_twoweek_min(),
        )

    def test_market_values_exact(self, small_dataset, crawled_dataset):
        assert np.allclose(
            crawled_dataset.market_value_dollars(),
            small_dataset.market_value_dollars(),
        )

    def test_memberships_exact(self, small_dataset, crawled_dataset):
        assert np.array_equal(
            crawled_dataset.membership_counts(),
            small_dataset.membership_counts(),
        )

    def test_top_group_types_labelled(self, small_dataset, crawled_dataset):
        sizes_truth = small_dataset.groups.sizes()
        top = np.argsort(-sizes_truth)[:50]
        # Group indices survive the crawl (gid encodes the index).
        for g in top:
            if crawled_dataset.groups.n_groups > g:
                assert (
                    crawled_dataset.groups.group_type[g]
                    == small_dataset.groups.group_type[g]
                )

    def test_achievement_counts_match(self, small_dataset, crawled_dataset):
        # Catalog order may differ; compare per appid.
        truth_by_appid = dict(
            zip(
                small_dataset.catalog.appid.tolist(),
                small_dataset.achievements.count.tolist(),
            )
        )
        crawled_by_appid = dict(
            zip(
                crawled_dataset.catalog.appid.tolist(),
                crawled_dataset.achievements.count.tolist(),
            )
        )
        assert truth_by_appid == crawled_by_appid

    def test_snapshot2_carried(self, small_dataset, crawled_dataset):
        assert crawled_dataset.snapshot2 is not None
        assert np.array_equal(
            crawled_dataset.snapshot2.owned, small_dataset.snapshot2.owned
        )


class TestAnalysesOnCrawledData:
    def test_percentiles_identical(self, small_dataset, crawled_dataset):
        from repro.core.percentiles import percentile_table

        truth = percentile_table(small_dataset)
        crawled = percentile_table(crawled_dataset)
        for row_t, row_c in zip(truth.rows, crawled.rows):
            assert row_t.values == pytest.approx(row_c.values)

    def test_homophily_identical(self, small_dataset, crawled_dataset):
        from repro.core.homophily import homophily

        truth = homophily(small_dataset)
        crawled = homophily(crawled_dataset)
        for name, rho in truth.correlations.rhos.items():
            assert crawled.correlations.rhos[name] == pytest.approx(
                rho, abs=1e-9
            )

"""Failure injection: the crawler under an unreliable API.

Wraps the transport with deterministic fault injectors (transient 5xx
errors, rate-limit storms, occasional garbage) and verifies the retry
machinery makes the harvest byte-identical to a clean crawl — and that
genuinely fatal conditions surface instead of looping forever.
"""

import itertools

import numpy as np
import pytest

from repro.crawler.details import crawl_details
from repro.crawler.profiles import sweep_profiles
from repro.crawler.retry import RetriesExhausted, RetryPolicy
from repro.crawler.session import CrawlSession
from repro.crawler.throttle import PolitePacer
from repro.steamapi.errors import ApiError, RateLimitedError
from repro.steamapi.service import SteamApiService
from repro.steamapi.transport import InProcessTransport


class FlakyTransport:
    """Fails every n-th request with a transient error."""

    def __init__(self, inner, every: int = 7, error_factory=None):
        self.inner = inner
        self.counter = itertools.count(1)
        self.every = every
        self.error_factory = error_factory or (
            lambda: ApiError("injected transient failure")
        )
        self.failures = 0

    def request(self, path, params):
        if next(self.counter) % self.every == 0:
            self.failures += 1
            raise self.error_factory()
        return self.inner.request(path, params)


class BrokenTransport:
    """Always fails."""

    def request(self, path, params):
        raise ApiError("hard down")


def _session(transport):
    return CrawlSession(
        transport=transport,
        pacer=PolitePacer(1e9, sleeper=lambda s: None),
        retry=RetryPolicy(sleeper=lambda s: None),
    )


@pytest.fixture(scope="module")
def service(small_world):
    return SteamApiService.from_world(small_world)


class TestTransientFailures:
    def test_flaky_transport_harvest_identical(self, service, small_world):
        steamids = small_world.dataset.accounts.steamids()[:300]
        clean = crawl_details(_session(InProcessTransport(service)), steamids)

        flaky = FlakyTransport(InProcessTransport(service), every=5)
        injected = crawl_details(_session(flaky), steamids)

        assert flaky.failures > 50  # the injector actually fired
        assert np.array_equal(injected.edge_a, clean.edge_a)
        assert np.array_equal(injected.lib_total_min, clean.lib_total_min)
        assert np.array_equal(injected.member_group, clean.member_group)

    def test_rate_limit_storm_survived(self, service, small_world):
        steamids = small_world.dataset.accounts.steamids()[:100]
        flaky = FlakyTransport(
            InProcessTransport(service),
            every=3,
            error_factory=lambda: RateLimitedError(
                "storm", retry_after=0.001
            ),
        )
        waits: list[float] = []
        session = CrawlSession(
            transport=flaky,
            pacer=PolitePacer(1e9, sleeper=lambda s: None),
            retry=RetryPolicy(sleeper=waits.append),
        )
        harvest = crawl_details(session, steamids)
        assert flaky.failures > 30
        # Retry honoured every injected retry_after hint.
        assert len(waits) == flaky.failures
        assert all(w == 0.001 for w in waits)
        clean = crawl_details(_session(InProcessTransport(service)), steamids)
        assert np.array_equal(harvest.lib_appid, clean.lib_appid)

    def test_profile_sweep_through_flakiness(self, service, small_world):
        flaky = FlakyTransport(InProcessTransport(service), every=11)
        sweep = sweep_profiles(_session(flaky))
        assert sweep.n_accounts == small_world.config.n_users
        assert np.array_equal(
            sweep.offsets, small_world.dataset.accounts.id_offset
        )


class TestHardFailures:
    def test_dead_api_raises_retries_exhausted(self):
        session = _session(BrokenTransport())
        with pytest.raises(RetriesExhausted):
            session.get("/ISteamApps/GetAppList/v2")

    def test_attempt_budget_respected(self):
        attempts = []

        class Counting:
            def request(self, path, params):
                attempts.append(path)
                raise ApiError("down")

        session = CrawlSession(
            transport=Counting(),
            pacer=PolitePacer(1e9, sleeper=lambda s: None),
            retry=RetryPolicy(max_attempts=4, sleeper=lambda s: None),
        )
        with pytest.raises(RetriesExhausted):
            session.get("/ISteamApps/GetAppList/v2")
        assert len(attempts) == 4

"""Parallel detail crawling."""

import numpy as np
import pytest

from repro.crawler.details import crawl_details
from repro.crawler.parallel import crawl_details_parallel, merge_detail_crawls
from repro.crawler.retry import RetryPolicy
from repro.crawler.session import CrawlSession
from repro.crawler.throttle import PolitePacer
from repro.steamapi.service import SteamApiService
from repro.steamapi.transport import InProcessTransport


@pytest.fixture(scope="module")
def service(small_world):
    return SteamApiService.from_world(small_world)


def _sequential(service, steamids):
    session = CrawlSession(
        transport=InProcessTransport(service),
        pacer=PolitePacer(1e9, sleeper=lambda s: None),
        retry=RetryPolicy(sleeper=lambda s: None),
    )
    return crawl_details(session, steamids)


class TestParallelCrawl:
    def test_matches_sequential(self, service, small_world):
        steamids = small_world.dataset.accounts.steamids()[:400]
        sequential = _sequential(service, steamids)
        parallel = crawl_details_parallel(
            lambda: InProcessTransport(service), steamids, n_workers=4
        )
        assert np.array_equal(parallel.edge_a, sequential.edge_a)
        assert np.array_equal(parallel.lib_user, sequential.lib_user)
        assert np.array_equal(parallel.lib_total_min, sequential.lib_total_min)
        assert np.array_equal(parallel.member_group, sequential.member_group)

    def test_user_positions_rebased(self, service, small_world):
        steamids = small_world.dataset.accounts.steamids()[:300]
        parallel = crawl_details_parallel(
            lambda: InProcessTransport(service), steamids, n_workers=3
        )
        owners = np.unique(parallel.lib_user)
        assert owners.max() < 300
        # Owners from every shard appear (positions span the range).
        assert owners.min() < 100
        assert owners.max() >= 200

    def test_single_worker_degenerate(self, service, small_world):
        steamids = small_world.dataset.accounts.steamids()[:50]
        one = crawl_details_parallel(
            lambda: InProcessTransport(service), steamids, n_workers=1
        )
        sequential = _sequential(service, steamids)
        assert np.array_equal(one.edge_a, sequential.edge_a)

    def test_more_workers_than_ids(self, service, small_world):
        steamids = small_world.dataset.accounts.steamids()[:3]
        result = crawl_details_parallel(
            lambda: InProcessTransport(service), steamids, n_workers=16
        )
        assert result.lib_user.max(initial=-1) < 3

    def test_rejects_zero_workers(self, service, small_world):
        with pytest.raises(ValueError):
            crawl_details_parallel(
                lambda: InProcessTransport(service),
                small_world.dataset.accounts.steamids()[:10],
                n_workers=0,
            )

    def test_api_keys_assigned_round_robin(self, small_world):
        service = SteamApiService.from_world(small_world)
        service.register_key("key-a")
        service.register_key("key-b")
        steamids = small_world.dataset.accounts.steamids()[:40]
        result = crawl_details_parallel(
            lambda: InProcessTransport(service),
            steamids,
            n_workers=2,
            api_keys=["key-a", "key-b"],
        )
        assert len(result.lib_user) > 0


#: Every array column a DetailCrawl carries, for exhaustive comparison.
DETAIL_COLUMNS = (
    "edge_a",
    "edge_b",
    "edge_day",
    "lib_user",
    "lib_appid",
    "lib_total_min",
    "lib_twoweek_min",
    "member_user",
    "member_group",
)


class TestShardCountInvariance:
    """The merged harvest must not depend on how the work was sharded."""

    @pytest.mark.parametrize("n_workers", [1, 2, 7])
    def test_all_columns_byte_identical(
        self, service, small_world, n_workers
    ):
        steamids = small_world.dataset.accounts.steamids()[:350]
        sequential = _sequential(service, steamids)
        parallel = crawl_details_parallel(
            lambda: InProcessTransport(service),
            steamids,
            n_workers=n_workers,
        )
        for column in DETAIL_COLUMNS:
            a = getattr(parallel, column)
            b = getattr(sequential, column)
            assert a.dtype == b.dtype, column
            assert a.tobytes() == b.tobytes(), column
        assert parallel.n_private == sequential.n_private
        assert parallel.n_skipped == sequential.n_skipped


class TestMergeDetailCrawls:
    def test_empty_shard_merges_cleanly(self, service, small_world):
        steamids = small_world.dataset.accounts.steamids()[:30]
        full = _sequential(service, steamids)
        empty = _sequential(service, steamids[:0])
        merged = merge_detail_crawls([full, empty], [0, 30])
        for column in DETAIL_COLUMNS:
            assert np.array_equal(
                getattr(merged, column), getattr(full, column)
            ), column

    def test_merge_of_no_shards_is_empty(self):
        merged = merge_detail_crawls([], [])
        for column in DETAIL_COLUMNS:
            assert len(getattr(merged, column)) == 0, column
        assert merged.n_private == 0
        assert merged.n_skipped == 0

    def test_offsets_validated(self, service, small_world):
        steamids = small_world.dataset.accounts.steamids()[:10]
        shard = _sequential(service, steamids)
        with pytest.raises(ValueError):
            merge_detail_crawls([shard], [0, 10])

    def test_http_transport_parallel(self, small_world):
        """Threaded crawl over a real localhost HTTP server."""
        from repro.steamapi.http_client import HttpTransport
        from repro.steamapi.http_server import serve

        service = SteamApiService.from_world(small_world)
        steamids = small_world.dataset.accounts.steamids()[:120]
        with serve(service) as server:
            result = crawl_details_parallel(
                lambda: HttpTransport(server.base_url),
                steamids,
                n_workers=4,
            )
        sequential = _sequential(
            SteamApiService.from_world(small_world), steamids
        )
        assert np.array_equal(result.lib_total_min, sequential.lib_total_min)

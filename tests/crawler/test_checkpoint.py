"""Resumable crawl checkpoints."""

import json

import pytest

from repro.crawler.checkpoint import CrawlCheckpoint


class TestCheckpoint:
    def test_fresh_when_absent(self, tmp_path):
        checkpoint = CrawlCheckpoint.load(tmp_path / "none.json")
        assert checkpoint.profile_cursor == 0
        assert checkpoint.detail_cursor == 0

    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "state.json"
        checkpoint = CrawlCheckpoint.load(path)
        checkpoint.profile_cursor = 12_300
        checkpoint.detail_cursor = 456
        checkpoint.storefront_cursor = 78
        checkpoint.achievements_cursor = 9
        checkpoint.extra["note"] = "phase 2"
        checkpoint.save()

        loaded = CrawlCheckpoint.load(path)
        assert loaded.profile_cursor == 12_300
        assert loaded.detail_cursor == 456
        assert loaded.storefront_cursor == 78
        assert loaded.achievements_cursor == 9
        assert loaded.extra == {"note": "phase 2"}

    def test_save_without_path_is_noop(self):
        CrawlCheckpoint().save()  # must not raise

    def test_atomic_overwrite(self, tmp_path):
        path = tmp_path / "state.json"
        first = CrawlCheckpoint.load(path)
        first.profile_cursor = 1
        first.save()
        second = CrawlCheckpoint.load(path)
        second.profile_cursor = 2
        second.save()
        assert CrawlCheckpoint.load(path).profile_cursor == 2
        assert not (tmp_path / "state.tmp").exists()

    def test_save_leaves_no_temp_file(self, tmp_path):
        """save() is atomic: after it returns, only the final file exists."""
        path = tmp_path / "state.json"
        checkpoint = CrawlCheckpoint.load(path)
        for cursor in range(5):
            checkpoint.profile_cursor = cursor
            checkpoint.save()
            assert [p.name for p in tmp_path.iterdir()] == ["state.json"]
            assert json.loads(path.read_text())  # always complete JSON

    def test_sibling_checkpoints_sharing_a_stem_do_not_collide(
        self, tmp_path, monkeypatch
    ):
        """Regression: the temp file used to be ``path.with_suffix('.tmp')``,
        so ``state.json`` and ``state.bak`` (same stem, different
        extension) both staged through ``state.tmp`` and could clobber
        each other mid-write.  The temp name must embed the full file
        name."""
        import os

        staged: list[str] = []
        real_replace = os.replace

        def spy_replace(src, dst):
            staged.append(os.path.basename(str(src)))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spy_replace)

        a = CrawlCheckpoint(path=tmp_path / "state.json")
        b = CrawlCheckpoint(path=tmp_path / "state.bak")
        a.profile_cursor = 1
        b.profile_cursor = 2
        a.save()
        b.save()
        assert len(set(staged)) == 2, staged
        assert CrawlCheckpoint.load(tmp_path / "state.json").profile_cursor == 1
        assert CrawlCheckpoint.load(tmp_path / "state.bak").profile_cursor == 2


class TestCrashRecovery:
    def test_truncated_file_falls_back_fresh(self, tmp_path):
        """A crash mid-write (simulated: partial JSON) must not brick
        the crawl — load warns and starts fresh."""
        path = tmp_path / "state.json"
        good = CrawlCheckpoint.load(path)
        good.detail_cursor = 999
        good.save()
        full = path.read_text()
        path.write_text(full[: len(full) // 2])  # torn write

        with pytest.warns(RuntimeWarning, match="corrupt"):
            recovered = CrawlCheckpoint.load(path)
        assert recovered.detail_cursor == 0
        assert recovered.path == path
        recovered.save()  # and it can checkpoint again afterwards
        assert CrawlCheckpoint.load(path).detail_cursor == 0

    def test_garbage_file_falls_back_fresh(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_bytes(b"\x00\xff not json at all")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            checkpoint = CrawlCheckpoint.load(path)
        assert checkpoint.profile_cursor == 0

    def test_non_object_json_falls_back_fresh(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text("[1, 2, 3]")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            checkpoint = CrawlCheckpoint.load(path)
        assert checkpoint.extra == {}


class TestPhaseState:
    def test_stash_roundtrip(self, tmp_path):
        path = tmp_path / "state.json"
        checkpoint = CrawlCheckpoint.load(path)
        checkpoint.stash("details", {"edge_a": [1, 2], "n_private": 3})
        checkpoint.mark_done("profiles")
        checkpoint.save()

        loaded = CrawlCheckpoint.load(path)
        assert loaded.unstash("details") == {
            "edge_a": [1, 2],
            "n_private": 3,
        }
        assert loaded.unstash("storefront") is None
        assert loaded.is_done("profiles")
        assert not loaded.is_done("details")

    def test_failure_log(self, tmp_path):
        path = tmp_path / "state.json"
        checkpoint = CrawlCheckpoint.load(path)
        checkpoint.record_failure("details", 76561197960265729)
        checkpoint.record_failure("details", 76561197960265731)
        checkpoint.record_failure("storefront", 440)
        checkpoint.save()

        loaded = CrawlCheckpoint.load(path)
        assert loaded.failures("details") == [
            76561197960265729,
            76561197960265731,
        ]
        assert loaded.failures("storefront") == [440]
        assert loaded.failures("achievements") == []
        assert loaded.n_failures == 3

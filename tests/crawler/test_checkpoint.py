"""Resumable crawl checkpoints."""

from repro.crawler.checkpoint import CrawlCheckpoint


class TestCheckpoint:
    def test_fresh_when_absent(self, tmp_path):
        checkpoint = CrawlCheckpoint.load(tmp_path / "none.json")
        assert checkpoint.profile_cursor == 0
        assert checkpoint.detail_cursor == 0

    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "state.json"
        checkpoint = CrawlCheckpoint.load(path)
        checkpoint.profile_cursor = 12_300
        checkpoint.detail_cursor = 456
        checkpoint.storefront_cursor = 78
        checkpoint.achievements_cursor = 9
        checkpoint.extra["note"] = "phase 2"
        checkpoint.save()

        loaded = CrawlCheckpoint.load(path)
        assert loaded.profile_cursor == 12_300
        assert loaded.detail_cursor == 456
        assert loaded.storefront_cursor == 78
        assert loaded.achievements_cursor == 9
        assert loaded.extra == {"note": "phase 2"}

    def test_save_without_path_is_noop(self):
        CrawlCheckpoint().save()  # must not raise

    def test_atomic_overwrite(self, tmp_path):
        path = tmp_path / "state.json"
        first = CrawlCheckpoint.load(path)
        first.profile_cursor = 1
        first.save()
        second = CrawlCheckpoint.load(path)
        second.profile_cursor = 2
        second.save()
        assert CrawlCheckpoint.load(path).profile_cursor == 2
        assert not (tmp_path / "state.tmp").exists()

"""Retry policy behavior."""

import pytest

from repro.crawler.retry import RetriesExhausted, RetryPolicy
from repro.steamapi.errors import (
    ApiError,
    NotFoundError,
    RateLimitedError,
    UnauthorizedError,
)


class Flaky:
    """Fails ``failures`` times, then succeeds."""

    def __init__(self, failures, error=ApiError("transient")):
        self.remaining = failures
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise self.error
        return "ok"


class TestRetryPolicy:
    def _policy(self, **kwargs):
        sleeps = []
        policy = RetryPolicy(sleeper=sleeps.append, **kwargs)
        return policy, sleeps

    def test_success_passthrough(self):
        policy, sleeps = self._policy()
        assert policy.call(lambda: 42) == 42
        assert sleeps == []

    def test_retries_transient_errors(self):
        policy, sleeps = self._policy()
        flaky = Flaky(3)
        assert policy.call(flaky) == "ok"
        assert flaky.calls == 4
        assert len(sleeps) == 3

    def test_exponential_backoff(self):
        policy, sleeps = self._policy(backoff_base=1.0)
        policy.call(Flaky(3))
        assert sleeps == [1.0, 2.0, 4.0]

    def test_backoff_capped(self):
        policy, sleeps = self._policy(backoff_base=10.0, backoff_cap=15.0)
        policy.call(Flaky(3))
        assert max(sleeps) == 15.0

    def test_honours_rate_limit_hint(self):
        policy, sleeps = self._policy()
        flaky = Flaky(1, RateLimitedError("slow down", retry_after=7.5))
        assert policy.call(flaky) == "ok"
        assert sleeps == [7.5]

    def test_fatal_errors_not_retried(self):
        policy, sleeps = self._policy()
        for error in (NotFoundError("x"), UnauthorizedError("x")):
            flaky = Flaky(1, error)
            with pytest.raises(type(error)):
                policy.call(flaky)
            assert flaky.calls == 1
        assert sleeps == []

    def test_gives_up_eventually(self):
        policy, _ = self._policy(max_attempts=3)
        flaky = Flaky(10)
        with pytest.raises(RetriesExhausted):
            policy.call(flaky)
        assert flaky.calls == 3

    def test_no_sleep_after_final_attempt(self):
        """The last failure raises immediately — sleeping first would
        just delay the RetriesExhausted for nothing."""
        policy, sleeps = self._policy(max_attempts=3)
        with pytest.raises(RetriesExhausted):
            policy.call(Flaky(10))
        assert len(sleeps) == 2  # attempts 1 and 2 slept; attempt 3 raised

    def test_exhausted_carries_last_error(self):
        policy, _ = self._policy(max_attempts=2)
        original = RateLimitedError("storm", retry_after=3.0)
        with pytest.raises(RetriesExhausted) as info:
            policy.call(Flaky(10, original))
        assert info.value.last is original

    def test_counters(self):
        policy, _ = self._policy(max_attempts=3)
        policy.call(Flaky(2))
        assert policy.retries == 2
        assert policy.exhausted == 0
        with pytest.raises(RetriesExhausted):
            policy.call(Flaky(10))
        assert policy.retries == 4  # two more sleeps before giving up
        assert policy.exhausted == 1


class TestJitter:
    def test_full_jitter_bounded_by_backoff(self):
        import random

        sleeps = []
        policy = RetryPolicy(
            sleeper=sleeps.append,
            backoff_base=1.0,
            jitter=True,
            rng=random.Random(42),
        )
        policy.call(Flaky(3))
        assert len(sleeps) == 3
        for attempt, slept in enumerate(sleeps):
            assert 0.0 <= slept <= 1.0 * 2.0**attempt

    def test_jitter_deterministic_per_seed(self):
        import random

        def run(seed):
            sleeps = []
            policy = RetryPolicy(
                sleeper=sleeps.append, jitter=True, rng=random.Random(seed)
            )
            policy.call(Flaky(4))
            return sleeps

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_rate_limit_hint_not_jittered(self):
        import random

        sleeps = []
        policy = RetryPolicy(
            sleeper=sleeps.append, jitter=True, rng=random.Random(0)
        )
        policy.call(Flaky(1, RateLimitedError("429", retry_after=7.5)))
        assert sleeps == [7.5]  # the server's hint is authoritative

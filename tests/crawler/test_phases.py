"""Individual crawl phases against the simulated API."""

import numpy as np
import pytest

from repro import constants
from repro.crawler.achievements import crawl_achievements
from repro.crawler.checkpoint import CrawlCheckpoint
from repro.crawler.details import crawl_details
from repro.crawler.profiles import sweep_profiles
from repro.crawler.retry import RetryPolicy
from repro.crawler.session import CrawlSession, unix_to_day
from repro.crawler.storefront import catalog_arrays, crawl_storefront
from repro.crawler.throttle import PolitePacer
from repro.steamapi.service import SteamApiService
from repro.steamapi.transport import InProcessTransport


@pytest.fixture(scope="module")
def session(small_world):
    service = SteamApiService.from_world(small_world)
    return CrawlSession(
        transport=InProcessTransport(service),
        pacer=PolitePacer(1e9, sleeper=lambda s: None),
        retry=RetryPolicy(sleeper=lambda s: None),
    )


class TestUnixToDay:
    def test_launch_is_day_zero(self):
        import datetime as dt

        launch = int(
            dt.datetime(2003, 9, 12, tzinfo=dt.timezone.utc).timestamp()
        )
        assert unix_to_day(launch) == 0
        assert unix_to_day(launch + 86400 * 10) == 10


class TestProfileSweep:
    def test_finds_every_account(self, session, small_world):
        sweep = sweep_profiles(session)
        assert sweep.n_accounts == small_world.config.n_users
        assert np.array_equal(
            sweep.offsets, small_world.dataset.accounts.id_offset
        )

    def test_created_days_match(self, session, small_world):
        sweep = sweep_profiles(session)
        assert np.array_equal(
            sweep.created_day, small_world.dataset.accounts.created_day
        )

    def test_density_profile_sparse_head(self, session):
        sweep = sweep_profiles(session)
        profile = sweep.density_profile(n_bins=10)
        # Head of the ID space is sparser than the tail (Section 3.1).
        assert profile[0] < profile[-2] or profile[0] < 0.6

    def test_checkpoint_resume(self, small_world, tmp_path):
        service = SteamApiService.from_world(small_world)
        session = CrawlSession(
            transport=InProcessTransport(service),
            pacer=PolitePacer(1e9, sleeper=lambda s: None),
        )
        checkpoint = CrawlCheckpoint.load(tmp_path / "cp.json")
        full = sweep_profiles(session, checkpoint=checkpoint)
        before = session.requests_made
        # Re-running a completed phase replays the stashed harvest:
        # identical result, zero additional API calls.
        resumed = sweep_profiles(session, checkpoint=checkpoint)
        assert session.requests_made == before
        assert resumed.n_accounts == full.n_accounts
        assert np.array_equal(resumed.offsets, full.offsets)

    def test_checkpoint_resume_from_disk(self, small_world, tmp_path):
        """A fresh process (fresh session) resumes losslessly from disk."""
        service = SteamApiService.from_world(small_world)

        def fresh_session():
            return CrawlSession(
                transport=InProcessTransport(service),
                pacer=PolitePacer(1e9, sleeper=lambda s: None),
            )

        path = tmp_path / "cp.json"
        full = sweep_profiles(fresh_session(), checkpoint=None)
        # First run stops early; second run resumes and must end up
        # with the same harvest as an uninterrupted sweep.
        first = CrawlCheckpoint.load(path)
        sweep_profiles(
            fresh_session(), checkpoint=first, max_offset=2_000
        )
        assert first.profile_cursor >= 2_000
        resumed = sweep_profiles(
            fresh_session(), checkpoint=CrawlCheckpoint.load(path)
        )
        assert np.array_equal(resumed.offsets, full.offsets)
        assert np.array_equal(resumed.created_day, full.created_day)


class TestDetailCrawl:
    def test_subset_crawl(self, session, small_world):
        ds = small_world.dataset
        steamids = ds.accounts.steamids()[:200]
        details = crawl_details(session, steamids)
        # Library entries for those 200 users match the dataset.
        expected = int(ds.owned_counts()[:200].sum())
        assert len(details.lib_appid) == expected
        assert details.lib_total_min.sum() == int(
            ds.library.user_total_min()[:200].sum()
        )

    def test_edges_kept_once(self, session, small_world):
        ds = small_world.dataset
        steamids = ds.accounts.steamids()
        details = crawl_details(session, steamids)
        assert len(details.edge_a) == ds.friends.n_edges

    def test_pre_epoch_edges_flagged(self, session, small_world):
        ds = small_world.dataset
        steamids = ds.accounts.steamids()
        details = crawl_details(session, steamids)
        epoch = ds.meta.friend_ts_epoch_day
        n_old = int(np.sum(ds.friends.day < epoch))
        assert int(np.sum(details.edge_day == -1)) == n_old


class TestStorefront:
    def test_full_catalog(self, session, small_world):
        crawl = crawl_storefront(session)
        assert crawl.n_products == small_world.dataset.catalog.n_products

    def test_catalog_arrays_roundtrip(self, session, small_world):
        crawl = crawl_storefront(session)
        columns = catalog_arrays(crawl)
        cat = small_world.dataset.catalog
        assert np.array_equal(np.sort(columns["appid"]), cat.appid)
        order = np.argsort(columns["appid"])
        assert np.array_equal(
            columns["price_cents"][order], cat.price_cents
        )
        assert np.array_equal(
            columns["multiplayer"][order], cat.multiplayer
        )

    def test_genre_names_cover_catalog(self, session, small_world):
        crawl = crawl_storefront(session)
        names = set(crawl.genre_names())
        for name in small_world.dataset.catalog.genre_names:
            assert name in names


class TestAchievementCrawl:
    def test_rates_roundtrip(self, session, small_world):
        ds = small_world.dataset
        appids = [int(a) for a in ds.catalog.appid[:300]]
        crawl = crawl_achievements(session, appids)
        for position in range(300):
            appid = int(ds.catalog.appid[position])
            expected = ds.achievements.game_rates(position)
            if len(expected) == 0:
                continue
            got = crawl.rates_by_appid[appid]
            assert np.allclose(got, expected, atol=1e-4)

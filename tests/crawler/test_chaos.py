"""Chaos integration: a full crawl through an unreliable API.

The headline guarantee of the resilience layer: a crawl through a
fault-injecting transport — rate-limit storms, 5xx errors, timeouts,
truncated payloads, bursts, even a kill-and-resume from checkpoint
mid-phase — produces a dataset *byte-identical* to a crawl through a
clean transport.  ``save_dataset`` output is deterministic, so the
comparison really is on file bytes.
"""

import hashlib

import pytest

from repro.crawler.checkpoint import CrawlCheckpoint
from repro.crawler.retry import RetriesExhausted, RetryPolicy
from repro.crawler.runner import run_full_crawl
from repro.steamapi.errors import ApiError
from repro.steamapi.faults import (
    FaultInjectingTransport,
    FaultPlan,
    FaultSpec,
)
from repro.steamapi.service import SteamApiService
from repro.steamapi.transport import InProcessTransport
from repro.store.io import save_dataset


@pytest.fixture(scope="module")
def service(small_world):
    return SteamApiService.from_world(small_world)


@pytest.fixture(scope="module")
def clean_sha(service, tmp_path_factory):
    """Byte-level digest of the dataset a clean crawl produces."""
    result = run_full_crawl(InProcessTransport(service))
    path = save_dataset(
        result.dataset, tmp_path_factory.mktemp("clean") / "clean.npz"
    )
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _sha(dataset, directory, name):
    path = save_dataset(dataset, directory / name)
    return hashlib.sha256(path.read_bytes()).hexdigest()


#: >= 5% total fault rate across all four kinds, with 2-long bursts.
CHAOS_PLAN = FaultPlan(
    seed=1337,
    default=FaultSpec(
        rate_limit=0.02,
        server_error=0.02,
        timeout=0.01,
        malformed=0.01,
        retry_after=(0.001, 0.01),
        burst=2,
    ),
)

#: Generous attempt budget so 2-long bursts (plus an unlucky adjacent
#: trigger) always resolve within one retried call.
CHAOS_RETRY = dict(max_attempts=10, jitter=True)


class TestChaosCrawl:
    def test_faulty_crawl_byte_identical_to_clean(
        self, service, clean_sha, tmp_path
    ):
        faulty = FaultInjectingTransport(
            InProcessTransport(service), CHAOS_PLAN
        )
        result = run_full_crawl(
            faulty,
            retry=RetryPolicy(sleeper=lambda s: None, **CHAOS_RETRY),
        )
        # The injector genuinely interfered (>=5% of a full crawl is
        # thousands of faults) and every fault was retried away.
        assert result.n_injected_faults > 1000
        assert result.injected_faults == faulty.fault_counts
        assert all(
            faulty.fault_counts[k] > 0 for k in faulty.fault_counts
        )
        assert result.retries >= result.n_injected_faults
        assert result.n_skipped == 0
        assert _sha(result.dataset, tmp_path, "chaos.npz") == clean_sha

    def test_kill_and_resume_mid_phase_byte_identical(
        self, service, clean_sha, tmp_path
    ):
        """Abort the crawl mid-details-phase (RetriesExhausted escapes),
        then resume from the checkpoint — still byte-identical."""

        class KillSwitch:
            """Healthy until ``fuse`` requests, then hard-down."""

            def __init__(self, inner, fuse):
                self.inner = inner
                self.fuse = fuse
                self.calls = 0

            def request(self, path, params):
                self.calls += 1
                if self.calls > self.fuse:
                    raise ApiError("backend down")
                return self.inner.request(path, params)

        checkpoint_path = tmp_path / "crawl.json"
        # The profile sweep takes ~7k requests for this world; 12_000
        # lands the outage squarely inside the detail phase.
        dying = KillSwitch(InProcessTransport(service), fuse=12_000)
        with pytest.raises(RetriesExhausted):
            run_full_crawl(
                dying,
                checkpoint=CrawlCheckpoint.load(checkpoint_path),
                retry=RetryPolicy(sleeper=lambda s: None, max_attempts=3),
            )

        aborted = CrawlCheckpoint.load(checkpoint_path)
        assert aborted.is_done("profiles")
        assert not aborted.is_done("details")
        assert 0 < aborted.detail_cursor  # mid-phase, cursor persisted
        assert aborted.unstash("details") is not None

        # Resume against a *still-flaky* (but transiently so) API.
        faulty = FaultInjectingTransport(
            InProcessTransport(service), CHAOS_PLAN
        )
        result = run_full_crawl(
            faulty,
            checkpoint=CrawlCheckpoint.load(checkpoint_path),
            retry=RetryPolicy(sleeper=lambda s: None, **CHAOS_RETRY),
        )
        assert result.n_injected_faults > 0
        assert _sha(result.dataset, tmp_path, "resumed.npz") == clean_sha

    def test_graceful_degradation_skips_and_records(
        self, service, clean_sha, tmp_path
    ):
        """Persistently failing SteamIDs are skipped and logged, not
        fatal: the crawl completes with a (documented) smaller harvest."""
        doomed = {int(sid) for sid in service.dataset.accounts.steamids()[:3]}

        class Vendetta:
            """Permanently fails the detail calls of specific SteamIDs."""

            def __init__(self, inner):
                self.inner = inner

            def request(self, path, params):
                if (
                    path != "/ISteamUser/GetPlayerSummaries/v2"
                    and int(params.get("steamid", -1)) in doomed
                ):
                    raise ApiError("this account always breaks")
                return self.inner.request(path, params)

        checkpoint = CrawlCheckpoint.load(tmp_path / "skip.json")
        result = run_full_crawl(
            Vendetta(InProcessTransport(service)),
            checkpoint=checkpoint,
            retry=RetryPolicy(sleeper=lambda s: None, max_attempts=3),
            skip_failed=True,
        )
        assert sorted(result.skipped["details"]) == sorted(doomed)
        assert result.n_skipped == len(doomed)
        assert sorted(checkpoint.failures("details")) == sorted(doomed)
        # The rest of the dataset survived: same accounts, fewer details.
        assert result.dataset.n_users == service.dataset.n_users
        assert _sha(result.dataset, tmp_path, "skip.npz") != clean_sha

    def test_crawlresult_counters_clean_run(self, service):
        result = run_full_crawl(InProcessTransport(service))
        assert result.retries == 0
        assert result.n_skipped == 0
        assert result.n_injected_faults == 0

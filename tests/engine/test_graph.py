"""Stage graph validation and deterministic topological ordering."""

import pytest

from repro.engine import Stage, StageContext, StageGraph


def _noop(ctx):
    return None


def _stage(name, deps=()):
    return Stage(name=name, fn=_noop, deps=tuple(deps))


class TestValidation:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            StageGraph([_stage("a"), _stage("a")])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            StageGraph([_stage("a", deps=("ghost",))])

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            StageGraph(
                [_stage("a", deps=("b",)), _stage("b", deps=("a",))]
            )

    def test_self_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            StageGraph([_stage("a", deps=("a",))])


class TestTopoOrder:
    def test_respects_dependencies(self):
        graph = StageGraph(
            [
                _stage("merge", deps=("left", "right")),
                _stage("left"),
                _stage("right"),
            ]
        )
        order = graph.topo_order
        assert order.index("merge") > order.index("left")
        assert order.index("merge") > order.index("right")

    def test_declaration_order_breaks_ties(self):
        graph = StageGraph([_stage("c"), _stage("a"), _stage("b")])
        assert graph.topo_order == ("c", "a", "b")

    def test_dependents_reverse_edges(self):
        graph = StageGraph(
            [_stage("base"), _stage("user", deps=("base",))]
        )
        assert graph.dependents()["base"] == ("user",)
        assert graph.dependents()["user"] == ()


class TestContext:
    def test_dep_lookup(self):
        ctx = StageContext(dataset=None, deps={"up": 42})
        assert ctx.dep("up") == 42

    def test_with_deps_preserves_inputs(self):
        ctx = StageContext(
            dataset="ds", config={"k": 1}, aux={"panel": "p"}
        )
        local = ctx.with_deps({"up": 1})
        assert local.dataset == "ds"
        assert local.config == {"k": 1}
        assert local.aux == {"panel": "p"}
        assert local.dep("up") == 1

"""Process-parallel execution: determinism and scheduling.

The determinism contract (DESIGN.md §8): the jobs count is a pure
acceleration knob — same seed, any jobs, byte-identical report.
"""

import pytest

from repro import SteamStudy
from repro.engine import Engine, Stage, StageContext, StageGraph
from repro.obs import Obs


def _double(ctx, value):
    return value * 2


def _add_deps(ctx):
    return ctx.dep("left") + ctx.dep("right")


def _use_config(ctx):
    return ctx.config["base"] + 1


def _use_aux(ctx):
    return ctx.aux["extra"]


def _diamond_graph():
    return StageGraph(
        [
            Stage(name="left", fn=_double, params=(("value", 3),)),
            Stage(name="right", fn=_use_config, config_keys=("base",)),
            Stage(name="merge", fn=_add_deps, deps=("left", "right")),
            Stage(name="aux", fn=_use_aux, aux_keys=("extra",)),
        ]
    )


class TestEngineGraphExecution:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_diamond_dependencies_resolve(self, small_dataset, jobs):
        ctx = StageContext(
            dataset=small_dataset,
            config={"base": 10},
            aux={"extra": "panel"},
        )
        run = Engine(jobs=jobs).run(_diamond_graph(), ctx)
        assert run.results == {
            "left": 6,
            "right": 11,
            "merge": 17,
            "aux": "panel",
        }
        assert set(run.executed) == {"left", "right", "merge", "aux"}
        assert run.cached == ()

    def test_stage_exception_propagates(self, small_dataset):
        def boom(ctx):
            raise RuntimeError("stage failed")

        # Serial path: the exception must surface, not be swallowed.
        graph = StageGraph([Stage(name="bad", fn=boom)])
        ctx = StageContext(dataset=small_dataset)
        with pytest.raises(RuntimeError, match="stage failed"):
            Engine(jobs=1).run(graph, ctx)


class TestParallelByteIdentity:
    @pytest.fixture(scope="class")
    def reports(self, small_world):
        study = SteamStudy(
            world=small_world, _dataset=small_world.dataset
        )
        return {
            jobs: study.run(table4_max_tail=4_000, jobs=jobs)
            for jobs in (1, 2, 4)
        }

    def test_same_seed_reports_byte_identical(self, reports):
        serial = reports[1].render()
        assert reports[2].render() == serial
        assert reports[4].render() == serial

    def test_figures_byte_identical(self, reports):
        serial = reports[1].render_figures()
        assert reports[2].render_figures() == serial
        assert reports[4].render_figures() == serial

    def test_table4_rows_ordered_identically(self, reports):
        orders = {
            jobs: tuple(report.table4.rows)
            for jobs, report in reports.items()
        }
        assert orders[2] == orders[1]
        assert orders[4] == orders[1]


class TestObservability:
    def test_engine_counters_and_stage_histogram(self, small_world):
        obs = Obs()
        study = SteamStudy(
            world=small_world, _dataset=small_world.dataset
        )
        study.run(include_table4=False, obs=obs, jobs=2)
        run = study.last_engine_run
        executed = obs.registry.get("engine_stages_executed")
        assert executed.value() == len(run.executed)
        histogram = obs.registry.get("engine_stage_seconds")
        total_observed = sum(
            series["count"] for series in histogram.snapshot()["series"]
        )
        assert total_observed == len(run.executed)

    def test_cache_counters_reach_obs(self, small_world, tmp_path):
        from repro.engine import StageCache

        obs = Obs()
        study = SteamStudy(
            world=small_world, _dataset=small_world.dataset
        )
        cache = StageCache(tmp_path / "cache", obs=obs)
        study.run(include_table4=False, obs=obs, cache=cache)
        study.run(include_table4=False, obs=obs, cache=cache)
        n = study.last_engine_run.n_stages
        assert obs.registry.get("engine_cache_misses").value() == n
        assert obs.registry.get("engine_cache_hits").value() == n
        assert obs.registry.get("engine_stages_cached").value() == n

    def test_serial_spans_preserved_per_stage(self, small_world):
        # The legacy contract: one analyze:<stage> span per stage.
        obs = Obs()
        study = SteamStudy(
            world=small_world, _dataset=small_world.dataset
        )
        study.run(include_table4=False, obs=obs)
        totals = obs.tracer.aggregate()
        assert totals["analyze"]["count"] == 1
        assert totals["analyze:summary"]["count"] == 1
        assert totals["analyze:fig12_week_panel"]["count"] == 1


def _shape(snap: dict) -> tuple:
    """A span subtree as (name, span_id, parent_span_id, children)."""
    return (
        snap["name"],
        snap.get("span_id"),
        snap.get("parent_span_id"),
        tuple(_shape(c) for c in snap["children"]),
    )


def _forest(obs: Obs) -> tuple:
    return tuple(_shape(s) for s in obs.tracer.snapshot())


class TestSpanTreeParity:
    """Serial, parallel, and fault-recovery runs must produce the same
    span tree — same names, same nesting, same deterministic span ids
    (DESIGN.md §10).  Execution strategy is an implementation detail;
    the trace is part of the deterministic output."""

    def _traced_obs(self):
        from repro.obs import TraceContext

        return Obs(trace=TraceContext.new(seed=1603))

    def test_study_serial_and_parallel_span_trees_identical(
        self, small_world
    ):
        forests = {}
        for jobs in (1, 2):
            obs = self._traced_obs()
            study = SteamStudy(
                world=small_world, _dataset=small_world.dataset
            )
            study.run(include_table4=False, obs=obs, jobs=jobs)
            forests[jobs] = _forest(obs)
        assert forests[2] == forests[1]
        names = [root[0] for root in forests[1]]
        assert "analyze" in names

    def test_parallel_worker_spans_have_ids(self, small_world):
        obs = self._traced_obs()
        study = SteamStudy(
            world=small_world, _dataset=small_world.dataset
        )
        study.run(include_table4=False, obs=obs, jobs=2)
        totals = obs.tracer.aggregate()
        assert totals["analyze:summary"]["count"] == 1
        analyze = [
            s for s in obs.tracer.snapshot() if s["name"] == "analyze"
        ][0]
        stage_spans = analyze["children"]
        assert stage_spans, "worker spans were not attached"
        ids = [s["span_id"] for s in stage_spans]
        assert all(isinstance(i, int) for i in ids)
        assert len(set(ids)) == len(ids)
        assert all(
            s["parent_span_id"] == analyze["span_id"] for s in stage_spans
        )

    def test_fault_fallback_span_tree_matches_clean_run(
        self, small_dataset
    ):
        from repro.engine import EngineFaultPlan, EngineFaultSpec

        ctx = StageContext(
            dataset=small_dataset,
            config={"base": 10},
            aux={"extra": "panel"},
        )
        # An enclosing span pins the stage spans into one tree whose
        # child order is attach order (= topo order), independent of
        # wall-clock start times.
        clean_obs = self._traced_obs()
        with clean_obs.span("run"):
            Engine(jobs=2, obs=clean_obs).run(_diamond_graph(), ctx)

        plan = EngineFaultPlan(
            stages={
                "left": EngineFaultSpec(crash=1.0, max_faulted_attempts=99)
            }
        )
        faulted_obs = self._traced_obs()
        with faulted_obs.span("run"):
            run = Engine(jobs=2, faults=plan, obs=faulted_obs).run(
                _diamond_graph(), ctx
            )
        assert run.serial_fallback

        serial_obs = self._traced_obs()
        with serial_obs.span("run"):
            Engine(jobs=1, obs=serial_obs).run(_diamond_graph(), ctx)

        assert _forest(faulted_obs) == _forest(clean_obs)
        assert _forest(serial_obs) == _forest(clean_obs)

"""Process-parallel execution: determinism and scheduling.

The determinism contract (DESIGN.md §8): the jobs count is a pure
acceleration knob — same seed, any jobs, byte-identical report.
"""

import pytest

from repro import SteamStudy
from repro.engine import Engine, Stage, StageContext, StageGraph
from repro.obs import Obs


def _double(ctx, value):
    return value * 2


def _add_deps(ctx):
    return ctx.dep("left") + ctx.dep("right")


def _use_config(ctx):
    return ctx.config["base"] + 1


def _use_aux(ctx):
    return ctx.aux["extra"]


def _diamond_graph():
    return StageGraph(
        [
            Stage(name="left", fn=_double, params=(("value", 3),)),
            Stage(name="right", fn=_use_config, config_keys=("base",)),
            Stage(name="merge", fn=_add_deps, deps=("left", "right")),
            Stage(name="aux", fn=_use_aux, aux_keys=("extra",)),
        ]
    )


class TestEngineGraphExecution:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_diamond_dependencies_resolve(self, small_dataset, jobs):
        ctx = StageContext(
            dataset=small_dataset,
            config={"base": 10},
            aux={"extra": "panel"},
        )
        run = Engine(jobs=jobs).run(_diamond_graph(), ctx)
        assert run.results == {
            "left": 6,
            "right": 11,
            "merge": 17,
            "aux": "panel",
        }
        assert set(run.executed) == {"left", "right", "merge", "aux"}
        assert run.cached == ()

    def test_stage_exception_propagates(self, small_dataset):
        def boom(ctx):
            raise RuntimeError("stage failed")

        # Serial path: the exception must surface, not be swallowed.
        graph = StageGraph([Stage(name="bad", fn=boom)])
        ctx = StageContext(dataset=small_dataset)
        with pytest.raises(RuntimeError, match="stage failed"):
            Engine(jobs=1).run(graph, ctx)


class TestParallelByteIdentity:
    @pytest.fixture(scope="class")
    def reports(self, small_world):
        study = SteamStudy(
            world=small_world, _dataset=small_world.dataset
        )
        return {
            jobs: study.run(table4_max_tail=4_000, jobs=jobs)
            for jobs in (1, 2, 4)
        }

    def test_same_seed_reports_byte_identical(self, reports):
        serial = reports[1].render()
        assert reports[2].render() == serial
        assert reports[4].render() == serial

    def test_figures_byte_identical(self, reports):
        serial = reports[1].render_figures()
        assert reports[2].render_figures() == serial
        assert reports[4].render_figures() == serial

    def test_table4_rows_ordered_identically(self, reports):
        orders = {
            jobs: tuple(report.table4.rows)
            for jobs, report in reports.items()
        }
        assert orders[2] == orders[1]
        assert orders[4] == orders[1]


class TestObservability:
    def test_engine_counters_and_stage_histogram(self, small_world):
        obs = Obs()
        study = SteamStudy(
            world=small_world, _dataset=small_world.dataset
        )
        study.run(include_table4=False, obs=obs, jobs=2)
        run = study.last_engine_run
        executed = obs.registry.get("engine_stages_executed")
        assert executed.value() == len(run.executed)
        histogram = obs.registry.get("engine_stage_seconds")
        total_observed = sum(
            series["count"] for series in histogram.snapshot()["series"]
        )
        assert total_observed == len(run.executed)

    def test_cache_counters_reach_obs(self, small_world, tmp_path):
        from repro.engine import StageCache

        obs = Obs()
        study = SteamStudy(
            world=small_world, _dataset=small_world.dataset
        )
        cache = StageCache(tmp_path / "cache", obs=obs)
        study.run(include_table4=False, obs=obs, cache=cache)
        study.run(include_table4=False, obs=obs, cache=cache)
        n = study.last_engine_run.n_stages
        assert obs.registry.get("engine_cache_misses").value() == n
        assert obs.registry.get("engine_cache_hits").value() == n
        assert obs.registry.get("engine_stages_cached").value() == n

    def test_serial_spans_preserved_per_stage(self, small_world):
        # The legacy contract: one analyze:<stage> span per stage.
        obs = Obs()
        study = SteamStudy(
            world=small_world, _dataset=small_world.dataset
        )
        study.run(include_table4=False, obs=obs)
        totals = obs.tracer.aggregate()
        assert totals["analyze"]["count"] == 1
        assert totals["analyze:summary"]["count"] == 1
        assert totals["analyze:fig12_week_panel"]["count"] == 1

"""Engine fault injection and crash recovery.

The determinism contract (DESIGN.md §8) extends to failure: a run that
loses workers, trips the watchdog, or falls back to serial execution
must produce byte-identical results to a clean run.  These tests drive
every recovery path with the seeded injector from
:mod:`repro.engine.faults`.
"""

import multiprocessing
import time

import pytest

from repro import SteamStudy
from repro.engine import (
    Engine,
    EngineFaultPlan,
    EngineFaultSpec,
    InjectedFaultError,
    Stage,
    StageContext,
    StageFailedError,
    StageGraph,
)
from repro.obs import Obs


def _double(ctx, value):
    return value * 2


def _add_deps(ctx):
    return ctx.dep("left") + ctx.dep("right")


def _const_seven(ctx):
    return 7


def _slowish(ctx):
    time.sleep(0.2)
    return "slow-done"


def _small_graph():
    return StageGraph(
        [
            Stage(name="left", fn=_double, params=(("value", 3),)),
            Stage(name="right", fn=_const_seven),
            Stage(name="merge", fn=_add_deps, deps=("left", "right")),
        ]
    )


def _wait_for_no_children(timeout: float = 10.0) -> list:
    """Poll until no worker processes remain (they exit asynchronously)."""
    deadline = time.monotonic() + timeout
    children = multiprocessing.active_children()
    while children and time.monotonic() < deadline:
        time.sleep(0.05)
        children = multiprocessing.active_children()
    return children


class TestFaultPlan:
    def test_decide_is_deterministic_across_instances(self):
        a = EngineFaultPlan.uniform(0.5, seed=42)
        b = EngineFaultPlan.uniform(0.5, seed=42)
        draws = [
            (stage, attempt)
            for stage in ("fig4", "table2", "table4:0", "summary")
            for attempt in range(4)
        ]
        assert [a.decide(s, n) for s, n in draws] == [
            b.decide(s, n) for s, n in draws
        ]

    def test_different_seeds_differ(self):
        stages = [f"stage{i}" for i in range(64)]
        a = [EngineFaultPlan.uniform(0.5, seed=1).decide(s, 0) for s in stages]
        b = [EngineFaultPlan.uniform(0.5, seed=2).decide(s, 0) for s in stages]
        assert a != b

    def test_longest_prefix_wins(self):
        plan = EngineFaultPlan(
            stages={
                "table4": EngineFaultSpec(crash=1.0),
                "table4:9": EngineFaultSpec(error=1.0),
            }
        )
        assert plan.spec_for("table4:3").crash == 1.0
        assert plan.spec_for("table4:9").error == 1.0
        # No matching prefix: the (clean) default spec applies.
        assert plan.spec_for("fig2").total_rate == 0.0

    def test_attempt_cap_bounds_faults(self):
        plan = EngineFaultPlan(
            stages={"x": EngineFaultSpec(crash=1.0, max_faulted_attempts=2)}
        )
        assert plan.decide("x", 0) == "crash"
        assert plan.decide("x", 1) == "crash"
        assert plan.decide("x", 2) is None

    def test_probabilities_validated(self):
        with pytest.raises(ValueError, match="sum to within"):
            EngineFaultSpec(crash=0.8, error=0.5)

    def test_error_fault_raises_in_process(self):
        plan = EngineFaultPlan(stages={"x": EngineFaultSpec(error=1.0)})
        with pytest.raises(InjectedFaultError, match="stage 'x'"):
            plan.inject("x", 0)
        plan.inject("x", 1)  # past the attempt cap: no fault


class TestCrashRecovery:
    def test_worker_crash_is_retried_to_the_same_answer(self, small_dataset):
        plan = EngineFaultPlan(
            stages={"left": EngineFaultSpec(crash=1.0)}
        )
        obs = Obs()
        ctx = StageContext(dataset=small_dataset)
        run = Engine(jobs=2, faults=plan, obs=obs).run(_small_graph(), ctx)
        clean = Engine(jobs=1).run(_small_graph(), ctx)
        assert run.results == clean.results
        assert run.retries >= 1
        assert run.pool_breaks >= 1
        assert not run.serial_fallback
        assert obs.registry.get("engine_stage_retries").value() >= 1
        assert obs.registry.get("engine_pool_breaks").value() >= 1

    def test_persistent_crasher_falls_back_to_serial(self, small_dataset):
        # Every attempt crashes: pool rebuilds are pointless, so after
        # max_pool_breaks the engine must finish the graph serially
        # (where the injector is never consulted) rather than loop.
        plan = EngineFaultPlan(
            stages={
                "left": EngineFaultSpec(crash=1.0, max_faulted_attempts=99)
            }
        )
        obs = Obs()
        ctx = StageContext(dataset=small_dataset)
        run = Engine(jobs=2, faults=plan, obs=obs).run(_small_graph(), ctx)
        clean = Engine(jobs=1).run(_small_graph(), ctx)
        assert run.results == clean.results
        assert run.serial_fallback
        assert run.pool_breaks > Engine.max_pool_breaks
        assert obs.registry.get("engine_serial_fallbacks").value() == 1

    def test_no_worker_processes_leak_after_recovery(self, small_dataset):
        plan = EngineFaultPlan(stages={"left": EngineFaultSpec(crash=1.0)})
        ctx = StageContext(dataset=small_dataset)
        Engine(jobs=2, faults=plan).run(_small_graph(), ctx)
        assert _wait_for_no_children() == []


class TestHangWatchdog:
    def test_hung_stage_is_killed_and_retried(self, small_dataset):
        plan = EngineFaultPlan(
            stages={"left": EngineFaultSpec(hang=1.0, hang_seconds=30.0)}
        )
        ctx = StageContext(dataset=small_dataset)
        start = time.monotonic()
        run = Engine(jobs=2, faults=plan, stage_timeout=0.5).run(
            _small_graph(), ctx
        )
        elapsed = time.monotonic() - start
        clean = Engine(jobs=1).run(_small_graph(), ctx)
        assert run.results == clean.results
        assert run.retries >= 1
        # Recovery must come from the watchdog, not the 30s sleep.
        assert elapsed < 15.0

    def test_persistent_hang_is_quarantined_not_infinite(self, small_dataset):
        plan = EngineFaultPlan(
            stages={
                "left": EngineFaultSpec(
                    hang=1.0, hang_seconds=30.0, max_faulted_attempts=99
                )
            }
        )
        ctx = StageContext(dataset=small_dataset)
        start = time.monotonic()
        with pytest.raises(StageFailedError) as excinfo:
            Engine(jobs=2, faults=plan, stage_timeout=0.3).run(
                _small_graph(), ctx
            )
        assert excinfo.value.stage == "left"
        assert time.monotonic() - start < 20.0


class TestDeterministicFailures:
    def test_error_fault_quarantines_with_stage_name(self, small_dataset):
        plan = EngineFaultPlan(stages={"left": EngineFaultSpec(error=1.0)})
        ctx = StageContext(dataset=small_dataset)
        with pytest.raises(StageFailedError) as excinfo:
            Engine(jobs=2, faults=plan).run(_small_graph(), ctx)
        assert excinfo.value.stage == "left"
        assert isinstance(excinfo.value.cause, InjectedFaultError)
        assert "left" in str(excinfo.value)

    def test_failing_stage_does_not_hang_run_with_work_in_flight(
        self, small_dataset
    ):
        # Regression: a stage exception used to leave in-flight futures
        # and pool workers behind, wedging interpreter shutdown.  The
        # run must raise promptly and leave no children.
        graph = StageGraph(
            [
                Stage(name="bad", fn=_double, params=(("value", 1),)),
                Stage(name="slow", fn=_slowish),
            ]
        )
        plan = EngineFaultPlan(stages={"bad": EngineFaultSpec(error=1.0)})
        ctx = StageContext(dataset=small_dataset)
        start = time.monotonic()
        with pytest.raises(StageFailedError, match="bad"):
            Engine(jobs=2, faults=plan).run(graph, ctx)
        assert time.monotonic() - start < 15.0
        assert _wait_for_no_children() == []


class TestStudyByteIdentityUnderFaults:
    def test_crashy_parallel_analyze_matches_clean_serial(self, small_world):
        # The acceptance path: a seeded worker-crash plan during a
        # jobs=4 analyze must still produce a byte-identical report,
        # with the recovery visible in the metrics.
        study = SteamStudy(world=small_world, _dataset=small_world.dataset)
        clean = study.run(include_table4=False).render()
        obs = Obs()
        plan = EngineFaultPlan(
            seed=7,
            stages={
                "fig4": EngineFaultSpec(crash=1.0),
                "table2": EngineFaultSpec(crash=1.0),
            },
        )
        faulted = study.run(
            include_table4=False, jobs=4, engine_faults=plan, obs=obs
        ).render()
        assert faulted == clean
        assert study.last_engine_run.retries > 0
        assert obs.registry.get("engine_stage_retries").value() > 0

"""Column-scoped stage keys (DESIGN.md §12).

A stage that declares ``columns`` is keyed on just those columns'
fingerprints plus its deps' keys, so a delta that leaves its inputs
byte-identical leaves it cache-valid even though the whole-dataset
fingerprint moved.
"""

import pytest

from repro.engine import Stage, stage_key
from repro.engine.fingerprint import select_column_fingerprints

FPS = {
    "meta": "m0",
    "shape": "s0",
    "fr.u": "f1",
    "fr.v": "f2",
    "lib.indptr": "l1",
    "lib.total_min": "l2",
}


def _noop(ctx):
    return None


def _stage(**kwargs):
    defaults = dict(name="s", fn=_noop)
    defaults.update(kwargs)
    return Stage(**defaults)


class TestSelectColumnFingerprints:
    def test_exact_key_match(self):
        sel = select_column_fingerprints(FPS, ("lib.total_min",))
        assert sel == {"meta": "m0", "shape": "s0", "lib.total_min": "l2"}

    def test_prefix_selects_whole_table(self):
        sel = select_column_fingerprints(FPS, ("fr",))
        assert sel == {"meta": "m0", "shape": "s0", "fr.u": "f1", "fr.v": "f2"}

    def test_meta_and_shape_always_included(self):
        # Even an empty spec folds meta+shape: names live in the
        # sidecar and output lengths follow the population.
        sel = select_column_fingerprints(FPS, ())
        assert sel == {"meta": "m0", "shape": "s0"}

    def test_unknown_spec_is_an_error(self):
        with pytest.raises(KeyError, match="no.*matching column"):
            select_column_fingerprints(FPS, ("ach",))


class TestColumnScopedStageKey:
    def test_unrelated_column_change_keeps_key(self):
        stage = _stage(columns=("fr",))
        base = stage_key("fp1", stage, {}, column_fps=FPS)
        moved = dict(FPS, **{"lib.total_min": "CHANGED"})
        # Whole-dataset fingerprint moved, but no fr.* column did.
        assert stage_key("fp2", stage, {}, column_fps=moved) == base

    def test_declared_column_change_moves_key(self):
        stage = _stage(columns=("fr",))
        base = stage_key("fp1", stage, {}, column_fps=FPS)
        moved = dict(FPS, **{"fr.u": "CHANGED"})
        assert stage_key("fp2", stage, {}, column_fps=moved) != base

    def test_meta_change_moves_every_scoped_key(self):
        stage = _stage(columns=("lib.indptr",))
        base = stage_key("fp1", stage, {}, column_fps=FPS)
        moved = dict(FPS, meta="CHANGED")
        assert stage_key("fp2", stage, {}, column_fps=moved) != base

    def test_legacy_stage_keys_on_whole_fingerprint(self):
        stage = _stage()  # columns=None
        a = stage_key("fp1", stage, {}, column_fps=FPS)
        b = stage_key("fp2", stage, {}, column_fps=FPS)
        assert a != b
        assert a == stage_key("fp1", stage, {})

    def test_dep_key_change_propagates(self):
        stage = _stage(columns=(), deps=("upstream",))
        a = stage_key(
            "fp", stage, {}, column_fps=FPS, dep_keys={"upstream": "k1"}
        )
        b = stage_key(
            "fp", stage, {}, column_fps=FPS, dep_keys={"upstream": "k2"}
        )
        assert a != b

"""The content-addressed stage cache: keys, integrity, eviction.

The study-level behaviors the ISSUE requires — hit/miss on config
change, invalidation on dataset fingerprint change, corrupt entries
falling back to recompute, warm reruns executing zero stages — are
exercised end-to-end through ``SteamStudy.run`` here.
"""

import numpy as np
import pytest

from repro import SteamStudy
from repro.engine import Stage, StageCache, content_hash, stage_key
from repro.engine.cache import _MAGIC


def _noop(ctx):
    return None


def _stage(**kwargs):
    defaults = dict(name="s", fn=_noop)
    defaults.update(kwargs)
    return Stage(**defaults)


class TestContentHash:
    def test_array_content_addressed(self):
        a = np.arange(10)
        assert content_hash(a) == content_hash(np.arange(10))
        assert content_hash(a) != content_hash(np.arange(11))
        assert content_hash(a) != content_hash(a.astype(np.float64))

    def test_container_order_stability(self):
        assert content_hash({"a": 1, "b": 2}) == content_hash(
            {"b": 2, "a": 1}
        )
        assert content_hash([1, 2]) != content_hash([2, 1])

    def test_unhashable_type_rejected(self):
        with pytest.raises(TypeError):
            content_hash(object())


class TestStageKey:
    def test_key_varies_with_each_input(self):
        stage = _stage(config_keys=("max_tail",))
        base = stage_key("fp", stage, {"max_tail": 10})
        assert base == stage_key("fp", stage, {"max_tail": 10})
        assert base != stage_key("fp2", stage, {"max_tail": 10})
        assert base != stage_key("fp", stage, {"max_tail": 20})
        assert base != stage_key(
            "fp", _stage(config_keys=("max_tail",), version="2"),
            {"max_tail": 10},
        )
        assert base != stage_key(
            "fp",
            _stage(config_keys=("max_tail",), params=(("row", "x"),)),
            {"max_tail": 10},
        )

    def test_undeclared_config_keys_ignored(self):
        stage = _stage(config_keys=("used",))
        assert stage_key(
            "fp", stage, {"used": 1, "ignored": 2}
        ) == stage_key("fp", stage, {"used": 1, "ignored": 3})

    def test_aux_inputs_enter_key(self):
        stage = _stage(aux_keys=("panel",))
        a = stage_key("fp", stage, {}, {"panel": np.arange(4)})
        b = stage_key("fp", stage, {}, {"panel": np.arange(5)})
        assert a != b


class TestCacheStore:
    def test_roundtrip_and_stats(self, tmp_path):
        cache = StageCache(tmp_path)
        hit, _ = cache.get("ab" * 32)
        assert not hit
        cache.put("ab" * 32, {"answer": 42})
        hit, value = cache.get("ab" * 32)
        assert hit and value == {"answer": 42}
        assert cache.stats.as_dict() == {
            "hits": 1,
            "misses": 1,
            "corrupt": 0,
            "evictions": 0,
            "writes": 1,
        }

    def test_numpy_payload_roundtrip(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.put("cd" * 32, np.arange(1000))
        hit, value = cache.get("cd" * 32)
        assert hit
        np.testing.assert_array_equal(value, np.arange(1000))

    @pytest.mark.parametrize(
        "corruption",
        [
            b"",  # truncated to nothing
            b"garbage",  # wrong magic
            _MAGIC + b"\x00" * 32 + b"payload",  # checksum mismatch
        ],
    )
    def test_corrupt_entry_is_a_miss_and_removed(
        self, tmp_path, corruption
    ):
        cache = StageCache(tmp_path)
        key = "ef" * 32
        cache.put(key, "value")
        cache.path_for(key).write_bytes(corruption)
        hit, _ = cache.get(key)
        assert not hit
        assert cache.stats.corrupt == 1
        assert not cache.path_for(key).exists()

    def test_atomic_write_leaves_no_temp(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.put("01" * 32, list(range(100)))
        leftovers = [
            p for p in tmp_path.rglob("*") if p.name.endswith(".tmp")
            or ".tmp." in p.name
        ]
        assert leftovers == []

    def test_eviction_prunes_oldest_to_budget(self, tmp_path):
        import os

        cache = StageCache(tmp_path, max_bytes=1)  # everything over
        cache.max_bytes = None
        keys = [f"{i:02d}" * 32 for i in range(4)]
        for i, key in enumerate(keys):
            cache.put(key, "x" * 100)
            # Distinct mtimes make LRU order deterministic.
            os.utime(cache.path_for(key), (i, i))
        cache.max_bytes = 2 * cache.path_for(keys[0]).stat().st_size
        evicted = cache.prune()
        assert evicted == 2
        assert cache.stats.evictions == 2
        # Oldest two gone, newest two intact.
        assert not cache.path_for(keys[0]).exists()
        assert not cache.path_for(keys[1]).exists()
        assert cache.get(keys[2])[0] and cache.get(keys[3])[0]

    def test_clear_removes_everything(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.put("aa" * 32, 1)
        cache.put("bb" * 32, 2)
        cache.clear()
        assert cache.entries() == []


class TestCacheConcurrency:
    """Eviction racing a concurrent reader, with the interleaving
    pinned down via the cache's test-only ``hooks`` callback rather
    than sleeps."""

    def test_prune_under_reader_degrades_to_miss(self, tmp_path):
        """Reader resolves the path, then the pruner unlinks it before
        the read happens: the get must degrade to a clean miss — no
        exception, no corrupt count, no phantom hit."""
        import threading

        reader_at_boundary = threading.Event()
        file_unlinked = threading.Event()
        key = "aa" * 32

        def hooks(event, path):
            if event == "get_before_read":
                reader_at_boundary.set()
                assert file_unlinked.wait(timeout=10)

        cache = StageCache(tmp_path, hooks=hooks)
        cache.put(key, {"answer": 42})

        outcome = {}

        def read():
            outcome["result"] = cache.get(key)

        reader = threading.Thread(target=read)
        reader.start()
        assert reader_at_boundary.wait(timeout=10)
        # The reader is frozen at the read boundary; evict its entry.
        cache.hooks = None
        cache.max_bytes = 0
        assert cache.prune() == 1
        file_unlinked.set()
        reader.join(timeout=10)
        assert not reader.is_alive()

        assert outcome["result"] == (False, None)
        assert cache.stats.misses == 1
        assert cache.stats.corrupt == 0

    def test_put_under_reader_serves_a_complete_value(self, tmp_path):
        """A put racing a get on the same key: the atomic ``os.replace``
        means the reader sees either the old or the new entry in full —
        a verified hit either way, never a torn read."""
        import threading

        reader_at_boundary = threading.Event()
        replaced = threading.Event()
        key = "cc" * 32

        def hooks(event, path):
            if event == "get_before_read":
                reader_at_boundary.set()
                assert replaced.wait(timeout=10)

        cache = StageCache(tmp_path, hooks=hooks)
        cache.put(key, "old")

        outcome = {}

        def read():
            outcome["result"] = cache.get(key)

        reader = threading.Thread(target=read)
        reader.start()
        assert reader_at_boundary.wait(timeout=10)
        # Reader frozen pre-read; replace the entry under it.
        cache.hooks = None
        cache.put(key, "new")
        replaced.set()
        reader.join(timeout=10)
        assert not reader.is_alive()

        hit, value = outcome["result"]
        assert hit and value == "new"
        assert cache.stats.corrupt == 0

    def test_reader_ahead_of_pruner_keeps_its_value(self, tmp_path):
        """The other interleaving: the reader finishes its read before
        the pruner unlinks.  The hit stands — eviction afterwards only
        affects future gets."""
        import threading

        pruner_at_boundary = threading.Event()
        read_done = threading.Event()
        key = "bb" * 32

        def hooks(event, path):
            if event == "prune_before_unlink":
                pruner_at_boundary.set()
                assert read_done.wait(timeout=10)

        cache = StageCache(tmp_path, hooks=hooks)
        cache.put(key, [1, 2, 3])
        cache.max_bytes = 0

        pruner = threading.Thread(target=cache.prune)
        pruner.start()
        assert pruner_at_boundary.wait(timeout=10)
        # Pruner is frozen just before the unlink; read through it.
        hit, value = cache.get(key)
        assert hit and value == [1, 2, 3]
        read_done.set()
        pruner.join(timeout=10)
        assert not pruner.is_alive()
        # Entry is gone now; the next get misses cleanly.
        assert cache.get(key) == (False, None)


class TestStudyLevelCaching:
    """The ISSUE's cache acceptance behaviors, end-to-end."""

    @pytest.fixture()
    def study(self, small_world):
        return SteamStudy(world=small_world, _dataset=small_world.dataset)

    def _run(self, study, tmp_path, **kwargs):
        kwargs.setdefault("include_table4", True)
        kwargs.setdefault("table4_max_tail", 4_000)
        report = study.run(cache=tmp_path / "cache", **kwargs)
        return report, study.last_engine_run

    def test_warm_rerun_executes_zero_stages(self, study, tmp_path):
        report_cold, run_cold = self._run(study, tmp_path)
        assert run_cold.cached == ()
        report_warm, run_warm = self._run(study, tmp_path)
        assert run_warm.executed == ()
        assert len(run_warm.cached) == run_cold.n_stages
        assert report_warm.render() == report_cold.render()

    def test_config_change_invalidates_only_dependent_stages(
        self, study, tmp_path
    ):
        self._run(study, tmp_path)
        _, run = self._run(study, tmp_path, table4_max_tail=3_000)
        # Only the Table 4 shards + merge read table4_max_tail; every
        # other stage must still hit.
        assert run.executed != ()
        assert all(
            name.startswith("table4") for name in run.executed
        )
        assert "table3_percentiles" in run.cached

    def test_dataset_fingerprint_change_invalidates(
        self, study, tmp_path
    ):
        from repro import SteamWorld, WorldConfig

        self._run(study, tmp_path)
        other_world = SteamWorld.generate(
            WorldConfig(n_users=2_000, seed=999)
        )
        other = SteamStudy(
            world=other_world, _dataset=other_world.dataset
        )
        _, run = self._run(other, tmp_path)
        assert run.cached == ()
        assert len(run.executed) == run.n_stages

    def test_corrupt_entry_falls_back_to_recompute(
        self, study, tmp_path
    ):
        report_a, _ = self._run(study, tmp_path)
        cache = StageCache(tmp_path / "cache")
        victim = cache.entries()[0]
        victim.write_bytes(b"bit rot")
        report_b, run = self._run(study, tmp_path)
        assert len(run.executed) == 1
        assert run.cache_stats["corrupt"] == 1
        assert report_b.render() == report_a.render()

"""SteamID arithmetic and ID-space layout."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import constants, steamid


class TestBijection:
    def test_base_id_roundtrip(self):
        assert steamid.to_steamid64(0) == constants.STEAMID_BASE
        assert steamid.account_number(constants.STEAMID_BASE) == 0

    def test_known_example_from_paper(self):
        # The paper quotes STEAM_0:1:849986 <-> 76561197961965701.
        assert steamid.from_text("STEAM_0:1:849986") == 76561197961965701
        assert steamid.to_text(76561197961965701) == "STEAM_0:1:849986"

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip_account_numbers(self, account):
        sid = steamid.to_steamid64(account)
        assert steamid.account_number(sid) == account

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_text_roundtrip(self, account):
        sid = steamid.to_steamid64(account)
        assert steamid.from_text(steamid.to_text(sid)) == sid

    def test_account_number_rejects_small_ids(self):
        with pytest.raises(ValueError):
            steamid.account_number(123)

    def test_to_steamid64_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            steamid.to_steamid64(-1)
        with pytest.raises(ValueError):
            steamid.to_steamid64(2**32)

    def test_from_text_rejects_garbage(self):
        for bad in ("STEAM_X:1:3", "76561197960265728", "STEAM_0:2:5", ""):
            with pytest.raises(ValueError):
                steamid.from_text(bad)

    def test_is_individual_id(self):
        assert steamid.is_individual_id(constants.STEAMID_BASE)
        assert steamid.is_individual_id(constants.STEAMID_BASE + 10**9)
        assert not steamid.is_individual_id(1234)


class TestIdSpace:
    def test_span_exceeds_accounts(self):
        space = steamid.IdSpace(n_accounts=10_000)
        assert space.span > 10_000

    def test_mean_density_matches_config(self):
        space = steamid.IdSpace(n_accounts=100_000)
        expected = 0.215 * 0.45 + 0.785 * 0.92
        assert space.n_accounts / space.span == pytest.approx(
            expected, rel=0.01
        )

    def test_offsets_sorted_and_distinct(self, rng):
        space = steamid.IdSpace(n_accounts=20_000)
        offsets = space.assign_offsets(rng)
        assert len(offsets) == 20_000
        assert np.all(np.diff(offsets) > 0)
        assert offsets.max() < space.span

    def test_density_profile_shape(self, rng):
        """Early range is sparse (<50%), late range dense (>90%)."""
        space = steamid.IdSpace(n_accounts=50_000)
        offsets = space.assign_offsets(rng)
        head = np.mean(offsets < space.early_span)
        n_early = (offsets < space.early_span).sum()
        early_density = n_early / space.early_span
        late_density = (len(offsets) - n_early) / (space.span - space.early_span)
        assert early_density < 0.55
        assert late_density > 0.85
        assert head < 0.25  # few accounts live in the sparse head

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            steamid.IdSpace(n_accounts=0)
        with pytest.raises(ValueError):
            steamid.IdSpace(n_accounts=10, breakpoint=1.5)
        with pytest.raises(ValueError):
            steamid.IdSpace(n_accounts=10, early_density=0.0)

    def test_sample_distinct_dense_case(self, rng):
        out = steamid.IdSpace._sample_distinct(rng, 100, 100)
        assert sorted(out.tolist()) == list(range(100))

    def test_sample_distinct_rejects_overfull(self, rng):
        with pytest.raises(ValueError):
            steamid.IdSpace._sample_distinct(rng, 10, 11)

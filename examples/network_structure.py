"""Network structure: corroborating Becker et al. (Section 2.2).

The paper's Section 2.2 says its friend-network results "corroborate
Becker's analysis" of the Steam community graph — a small-world network.
This example computes the structural statistics from a generated world:
giant-component coverage, clustering vs an equally dense random graph,
degree assortativity, mean shortest-path length, and the Figure 1 / 2
evolution series.

Run:  python examples/network_structure.py [n_users]
"""

import sys

from repro import SteamStudy
from repro.core.graphstats import graph_structure
from repro.core.social import degree_distributions, network_evolution


def main() -> None:
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000
    study = SteamStudy.generate(n_users=n_users, seed=29)
    ds = study.dataset

    print("=== small-world structure (Becker et al., Section 2.2) ===")
    structure = graph_structure(ds, clustering_samples=8_000, path_sources=25)
    print(structure.render())

    print("\n=== network evolution (Figure 1) ===")
    evo = network_evolution(ds, n_points=12)
    for day, users, friends in zip(
        evo.days, evo.cumulative_users, evo.cumulative_friendships
    ):
        date = ds.day_to_date(int(day))
        print(f"  {date.isoformat()}  users={users:>9,}  friendships={friends:>9,}")
    print(f"  friendships grow faster than users: {evo.friendships_grow_faster()}")

    print("\n=== yearly friend additions (Figure 2) ===")
    degrees = degree_distributions(ds)
    for year, series in sorted(degrees.per_year.items()):
        print(
            f"  {year}: {int(series.y.sum()):>8,} users added friends "
            f"(max added {int(series.x.max())})"
        )
    print(
        f"  {degrees.share_adding_le10:.1%} added <= 10/yr (paper 88.06%); "
        f"{degrees.share_adding_gt200:.4%} added > 200 (paper 0.02%)"
    )


if __name__ == "__main__":
    main()

"""Distribution atlas: the paper's Table 4 methodology, step by step.

For each behavioral attribute this example walks the full Clauset-style
pipeline — KS-minimizing xmin, the four maximum-likelihood tail fits,
and the pairwise likelihood-ratio tests — and prints the resulting
classification alongside the paper's label.  It also dumps the CCDF
series to CSV files for external plotting.

Run:  python examples/distribution_atlas.py [n_users] [outdir]
"""

import pathlib
import sys

import numpy as np

from repro import SteamStudy, constants
from repro.core.binning import ccdf
from repro.tailfit import Fit, classify


def main() -> None:
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 100_000
    outdir = pathlib.Path(sys.argv[2]) if len(sys.argv) > 2 else pathlib.Path(
        "atlas_out"
    )
    outdir.mkdir(exist_ok=True)

    study = SteamStudy.generate(n_users=n_users, seed=5)
    ds = study.dataset

    attributes = {
        "friends": (
            ds.friend_counts().astype(float),
            constants.TABLE4_CLASSIFICATIONS["friends"][0],
        ),
        "owned_games": (
            ds.owned_counts().astype(float),
            constants.TABLE4_CLASSIFICATIONS["owned_games"][0],
        ),
        "market_value": (
            ds.market_value_dollars(),
            constants.TABLE4_CLASSIFICATIONS["market_value"][0],
        ),
        "total_playtime_h": (
            ds.total_playtime_hours(),
            constants.TABLE4_CLASSIFICATIONS["total_playtime"][0],
        ),
        "twoweek_playtime_h": (
            ds.twoweek_playtime_hours(),
            constants.TABLE4_CLASSIFICATIONS["twoweek_playtime"][0],
        ),
        "group_size": (
            ds.groups.sizes().astype(float),
            constants.TABLE4_CLASSIFICATIONS["group_size"][0],
        ),
    }

    rng = np.random.default_rng(0)
    for name, (values, paper_label) in attributes.items():
        positive = values[values > 0]
        fit = Fit(positive, max_tail=40_000, rng=rng)
        result = classify(positive, xmin=fit.xmin, max_tail=40_000, rng=rng)
        pl = fit.fit_family("power_law")
        ln = fit.fit_family("lognormal")
        print(f"{name}:")
        print(
            f"  xmin={fit.xmin:.2f}  tail n={len(fit.tail)}  "
            f"PL alpha={pl.alpha:.2f}  LN mu={ln.mu:.2f} sigma={ln.sigma:.2f}"
        )
        print(
            f"  classification: {result.label}  (paper: {paper_label})"
        )
        series = ccdf(positive, label=name)
        path = outdir / f"ccdf_{name}.csv"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("x,p_ge_x\n")
            for x, y in zip(series.x, series.y):
                handle.write(f"{x},{y}\n")
        print(f"  ccdf written to {path}")


if __name__ == "__main__":
    main()

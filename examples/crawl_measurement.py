"""The paper's methodology end to end: crawl a live API, then analyze.

This example stands up the simulated Steam Web API as a real HTTP server
on localhost, runs the four-phase crawler against it (ID-space sweep in
batches of 100, per-user details, storefront catalog, achievement
percentages), verifies the crawled dataset matches the ground truth, and
prints the headline analyses.

Run:  python examples/crawl_measurement.py [n_users]
"""

import sys
import time

import numpy as np

from repro import SteamStudy
from repro.crawler.runner import run_full_crawl
from repro.steamapi.http_client import HttpTransport
from repro.steamapi.http_server import serve
from repro.steamapi.service import SteamApiService


def main() -> None:
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 3_000

    study = SteamStudy.generate(n_users=n_users, seed=42)
    truth = study.dataset
    service = SteamApiService.from_world(study.world)

    t0 = time.time()
    with serve(service) as server:
        print(f"API server listening on {server.base_url}")
        result = run_full_crawl(
            HttpTransport(server.base_url), snapshot2=truth.snapshot2
        )
    crawled = result.dataset
    elapsed = time.time() - t0
    print(
        f"crawled {crawled.n_users:,} accounts over HTTP in {elapsed:.1f}s "
        f"({result.requests_made:,} API requests)"
    )

    # The crawler must reconstruct the ground truth exactly.
    checks = {
        "accounts": crawled.n_users == truth.n_users,
        "friendships": crawled.friends.n_edges == truth.friends.n_edges,
        "owned copies": crawled.library.owned.nnz == truth.library.owned.nnz,
        "playtime total": (
            crawled.library.user_total_min().sum()
            == truth.library.user_total_min().sum()
        ),
        "degree distribution": np.array_equal(
            np.sort(crawled.friend_counts()), np.sort(truth.friend_counts())
        ),
    }
    for name, ok in checks.items():
        print(f"  reconstruction check [{name}]: {'OK' if ok else 'MISMATCH'}")

    # Density profile of the ID sweep (Section 3.1).
    profile = result.sweep.density_profile(n_bins=10)
    cells = " ".join(f"{x:.2f}" for x in profile)
    print(f"ID-space density profile (10 bins): {cells}")

    report = SteamStudy.from_dataset(crawled).run(
        include_table4=False, include_week_panel=False
    )
    print(report.fig6_playtime_cdf.render())
    print(report.fig10_multiplayer.render())
    print(report.fig11_homophily.render())


if __name__ == "__main__":
    main()

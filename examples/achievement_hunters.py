"""Achievement hunters: answering Section 9's open question.

The paper saw that average completion rates sit above medians and modes
and hypothesized an "achievement hunter" minority, but "further
assessment ... requires access to individual players' achievement
statistics instead of aggregations collected."  This example generates
exactly those per-player statistics (consistent with the game-level
aggregates the 2016 API exposed), detects the hunter cohort, and shows it
is indeed what skews the averages.

Run:  python examples/achievement_hunters.py [n_users]
"""

import sys

import numpy as np

from repro import SteamStudy
from repro.core.hunters import hunter_report


def main() -> None:
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 80_000
    study = SteamStudy.generate(n_users=n_users, seed=61)
    world = study.world
    assert world is not None

    player_ach = world.player_achievements()
    report = hunter_report(world.dataset, player_ach)
    print(report.render())

    # A closer look at the detected cohort.
    ds = world.dataset
    lib = ds.library
    entry_user = lib.owned.row_ids()
    entry_game = lib.owned.indices
    rates = player_ach.completion_rate(ds.achievements, entry_game)
    valid = np.isfinite(rates) & (lib.total_min > 0)

    hunters = np.flatnonzero(player_ach.hunter_mask)
    print(f"\nexample hunters ({len(hunters)} hidden in the population):")
    shown = 0
    for user in hunters:
        mask = valid & (entry_user == user)
        if mask.sum() < 5:
            continue
        print(
            f"  account {ds.accounts.steamids()[user]}: "
            f"{int(mask.sum())} achievement games, "
            f"mean completion {rates[mask].mean():.0%}, "
            f"{ds.total_playtime_hours()[user]:,.0f} h played"
        )
        shown += 1
        if shown == 5:
            break


if __name__ == "__main__":
    main()

"""Quickstart: generate a synthetic Steam universe and reproduce the paper.

Builds a 50,000-account world (the paper measured 108.7M — scale is a
config knob), runs every table and figure, and prints the text report.

Run:  python examples/quickstart.py [n_users] [seed]
"""

import sys
import time

from repro import SteamStudy


def main() -> None:
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 50_000
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 1603

    t0 = time.time()
    study = SteamStudy.generate(n_users=n_users, seed=seed)
    print(
        f"generated {n_users:,} accounts in {time.time() - t0:.1f}s "
        f"({study.dataset.friends.n_edges:,} friendships, "
        f"{study.dataset.library.owned.nnz:,} owned games)"
    )

    t0 = time.time()
    report = study.run()
    print(f"analyzed in {time.time() - t0:.1f}s")
    print(report.render())


if __name__ == "__main__":
    main()

"""Census vs crawl: reproducing the paper's Section 2.2 argument.

Earlier Steam studies (Becker et al., Blackburn et al.) sampled the
network by crawling friend lists from seed users.  The paper argues this
biases every statistic: "users with fewer friends are less likely to be
crawled", and the ~70% of accounts with no friends at all are invisible.
This example runs both crawl methodologies against the synthetic census
and quantifies the distortion.

Run:  python examples/sampling_bias.py [n_users]
"""

import sys

import numpy as np

from repro import SteamStudy
from repro.core.sampling import sampling_bias, snowball_sample


def main() -> None:
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 80_000
    study = SteamStudy.generate(n_users=n_users, seed=33)
    ds = study.dataset

    for method in ("snowball", "random_walk"):
        bias = sampling_bias(ds, method=method, sample_fraction=0.1)
        print(bias.render())

    # The degree-distribution view: what Becker's crawl would have seen.
    degrees = ds.friend_counts()
    sample = snowball_sample(ds, int(0.1 * n_users), rng=np.random.default_rng(1))
    census_connected = degrees[degrees > 0]
    crawl_view = degrees[sample]
    print("\ndegree percentiles (connected census vs snowball crawl):")
    for pct in (50, 80, 90, 99):
        print(
            f"  p{pct}: census {np.percentile(census_connected, pct):6.0f}   "
            f"crawl {np.percentile(crawl_view, pct):6.0f}"
        )
    print(
        "\nThe crawl never sees isolated accounts "
        f"({np.mean(degrees == 0):.0%} of the population) and "
        "over-represents the well-connected — the bias the paper's "
        "exhaustive ID-space enumeration eliminated."
    )


if __name__ == "__main__":
    main()

"""Hunting the paper's outlier archetypes in the synthetic population.

Section 5 and 6 of the paper describe the long tail in terms of concrete
behaviors: *collectors* who own hundreds of games and play almost none,
*idlers* who park the client at 80-90% of the 336-hour two-week maximum,
and the silent majority of modest, casual accounts.  This example pulls
those archetypes out of a generated world the same way the authors
manually audited their extreme accounts.

Run:  python examples/gamer_archetypes.py [n_users]
"""

import sys

import numpy as np

from repro import SteamStudy


def main() -> None:
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000
    study = SteamStudy.generate(n_users=n_users, seed=77)
    ds = study.dataset

    owned = ds.owned_counts()
    played = ds.played_counts()
    total_h = ds.total_playtime_hours()
    twoweek_h = ds.twoweek_playtime_hours()
    value = ds.market_value_dollars()

    owners = owned > 0
    print(f"population: {n_users:,} accounts, {owners.sum():,} game owners\n")

    # --- the modest majority (Section 10) --------------------------------
    print("The modest majority (medians over owners):")
    print(f"  owned games        {np.median(owned[owners]):.0f}")
    print(f"  account value      ${np.median(value[owners]):.2f}")
    print(f"  total playtime     {np.median(total_h[owners]):.0f} h")
    print(
        f"  played in last 2wk {np.mean(twoweek_h[owners] > 0):.1%} of owners"
    )

    # --- collectors (Section 5) ------------------------------------------
    big_unplayed = np.flatnonzero((owned >= 500) & (played == 0))
    collectors = np.flatnonzero(
        (owned >= 300) & (played < 0.4 * owned) & owners
    )
    print(
        f"\nCollectors: {len(collectors)} accounts own >= 300 games and "
        f"play under 40% of them"
    )
    print(
        f"  (paper: 29 accounts owned >= 500 games without playing any; "
        f"here: {len(big_unplayed)})"
    )
    for user in collectors[:5]:
        print(
            f"  account {ds.accounts.steamids()[user]}: "
            f"{owned[user]} games, {played[user]} played, "
            f"${value[user]:,.0f} library"
        )

    # --- idlers (Section 6.1) ---------------------------------------------
    idlers = np.flatnonzero(twoweek_h >= 0.80 * 336.0)
    print(
        f"\nIdlers: {len(idlers)} accounts at >= 80% of the 336-hour "
        f"two-week maximum ({len(idlers) / n_users:.4%} of accounts; "
        f"paper ~0.01%)"
    )

    # --- the 1% (Section 10.2, game addiction discussion) -----------------
    p99_twoweek = np.percentile(twoweek_h[owners], 99)
    heavy = owners & (twoweek_h >= max(p99_twoweek, 1e-9))
    print(
        f"\nThe top 1% of owners played >= {p99_twoweek:.1f} h in two weeks "
        f"(~{p99_twoweek / 14:.1f} h/day; paper: 'the top 1% play more "
        f"than 5 hours a day')"
    )
    print(
        f"  they hold {total_h[heavy].sum() / total_h.sum():.1%} of all "
        f"lifetime playtime"
    )


if __name__ == "__main__":
    main()

"""Why the 2013 crawl cannot be repeated — and what privacy does to it.

The original study predates Steam's privacy-by-default era.  This example
runs the same crawler against the simulated API with increasing shares of
private profiles and shows how the collected network and behavioral
statistics decay — the quantitative argument (see DESIGN.md) for why this
reproduction substitutes a calibrated synthetic universe instead of a
fresh crawl.

Run:  python examples/modern_api_gate.py [n_users]
"""

import sys

import numpy as np

from repro import SteamStudy
from repro.crawler.details import crawl_details
from repro.crawler.retry import RetryPolicy
from repro.crawler.session import CrawlSession
from repro.crawler.throttle import PolitePacer
from repro.steamapi.service import SteamApiService
from repro.steamapi.transport import InProcessTransport


def crawl_with_privacy(study, private_rate: float):
    service = SteamApiService.from_world(
        study.world, private_rate=private_rate, private_seed=4
    )
    session = CrawlSession(
        transport=InProcessTransport(service),
        pacer=PolitePacer(1e9, sleeper=lambda s: None),
        retry=RetryPolicy(sleeper=lambda s: None),
    )
    steamids = study.dataset.accounts.steamids()
    return crawl_details(session, steamids)


def main() -> None:
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 4_000
    study = SteamStudy.generate(n_users=n_users, seed=12)
    truth = study.dataset

    true_edges = truth.friends.n_edges
    true_copies = truth.library.owned.nnz
    true_minutes = int(truth.library.user_total_min().sum())

    print(f"ground truth: {true_edges:,} friendships, "
          f"{true_copies:,} owned copies\n")
    print(f"{'private':>8} {'profiles lost':>14} {'edges seen':>11} "
          f"{'copies seen':>12} {'playtime seen':>14}")
    for rate in (0.0, 0.25, 0.50, 0.75):
        harvest = crawl_with_privacy(study, rate)
        # The crawler records each friendship once, from its lower-ID
        # endpoint; the edge is lost when that profile is private.
        edges = len(np.unique(
            harvest.edge_a * 10_000_000_000 + harvest.edge_b
        ))
        print(
            f"{rate:>8.0%} {harvest.n_private:>14,} "
            f"{edges / true_edges:>10.1%} "
            f"{len(harvest.lib_appid) / true_copies:>11.1%} "
            f"{int(harvest.lib_total_min.sum()) / true_minutes:>13.1%}"
        )

    print(
        "\nAt 2024-era privacy defaults the majority of library and "
        "playtime data is unobservable, and friendships survive only via "
        "their public endpoint — the sampling bias the paper's exhaustive "
        "2013 crawl existed to avoid. Hence the calibrated synthetic "
        "substitution (DESIGN.md)."
    )


if __name__ == "__main__":
    main()

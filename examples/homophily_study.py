"""Homophily deep-dive: Section 7 / Figure 11, plus an ablation.

Reproduces the paper's correlation battery and then re-generates the
same population with the homophily kernel disabled (large stub noise,
flat match weights) to show the correlations collapse — i.e. that the
effect measured in Section 7 is a property of *who befriends whom*, not
of the attribute marginals.

Run:  python examples/homophily_study.py [n_users]
"""

import dataclasses
import sys

from repro import SteamStudy, WorldConfig
from repro.core.homophily import cross_correlations, homophily
from repro.core.spearman import strength_label


def correlations_for(config: WorldConfig) -> tuple[dict, dict]:
    study = SteamStudy.generate(config=config)
    homo = homophily(study.dataset)
    cross = cross_correlations(study.dataset)
    return homo.correlations.rhos, cross.rhos


def main() -> None:
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 100_000
    base = WorldConfig(n_users=n_users, seed=9)

    print("=== calibrated world (paper's Section 7) ===")
    homo_rhos, cross_rhos = correlations_for(base)
    for name, rho in homo_rhos.items():
        print(f"  {name:<34} {rho:+.2f}  ({strength_label(rho)})")
    for name, rho in cross_rhos.items():
        print(f"  {name:<34} {rho:+.2f}  ({strength_label(rho)})")

    # Ablation: same marginals, random friend matching.
    social = dataclasses.replace(
        base.social,
        stub_noise=50.0,
        match_weight_value=0.0,
        match_weight_degree=0.0,
        match_weight_play=0.0,
        match_weight_owned=0.0,
        match_weight_noise=1.0,
    )
    ablated = dataclasses.replace(base, social=social)
    print("\n=== ablated world (random matching, same marginals) ===")
    homo_rhos, _ = correlations_for(ablated)
    for name, rho in homo_rhos.items():
        print(f"  {name:<34} {rho:+.2f}  ({strength_label(rho)})")
    print(
        "\nHomophily collapses under random matching: the Section 7 "
        "correlations measure the friendship structure, not the marginals."
    )


if __name__ == "__main__":
    main()
